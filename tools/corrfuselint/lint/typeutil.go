package lint

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Render prints a node back to source text (single line, best effort).
func Render(fset *token.FileSet, n ast.Node) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, n); err != nil {
		return "?"
	}
	return b.String()
}

// Callee resolves the object a call expression invokes: a *types.Func
// for functions and methods, a *types.Builtin for builtins, nil for
// indirect calls through function values and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// CalleeName returns the bare identifier a call invokes ("Close",
// "Fprintf"), or "".
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// Receiver returns the expression a method is selected from (x in
// x.M(...)), or nil for plain function calls.
func Receiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// NamedType dereferences pointers and reports the named type behind t,
// or nil (builtin, interface literal, struct literal, ...).
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// IsNamed reports whether t (after pointer dereference) is the named
// type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// PkgPathOf returns the declaring package path of obj, or "".
func PkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// ResultTuple returns the result types of a call's callee signature.
func ResultTuple(info *types.Info, call *ast.CallExpr) *types.Tuple {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
