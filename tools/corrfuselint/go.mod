module corrfuselint

go 1.24
