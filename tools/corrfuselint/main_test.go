package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"corrfuselint/analyzers"
	"corrfuselint/lint"
)

// TestRepoClean asserts the repository itself carries zero findings, so
// the suite is enforced rather than aspirational: a change that
// introduces a finding must fix it or suppress it with a written reason.
func TestRepoClean(t *testing.T) {
	prog, err := lint.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags, err := prog.Run(analyzers.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func tempOut(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestDriverList(t *testing.T) {
	out, errOut := tempOut(t, "out"), tempOut(t, "err")
	if code := run([]string{"-list"}, out, errOut); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	raw, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range analyzers.All() {
		if !strings.Contains(string(raw), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, raw)
		}
	}
}

func TestDriverUnknownAnalyzer(t *testing.T) {
	out, errOut := tempOut(t, "out"), tempOut(t, "err")
	if code := run([]string{"-only", "nosuch"}, out, errOut); code != 2 {
		t.Fatalf("-only nosuch exit = %d, want 2", code)
	}
	raw, err := os.ReadFile(errOut.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr = %q, want unknown-analyzer error", raw)
	}
}

// TestDriverFindingsExit runs the driver against a fixture module known
// to contain findings and checks the failing exit code and output shape.
func TestDriverFindingsExit(t *testing.T) {
	out, errOut := tempOut(t, "out"), tempOut(t, "err")
	code := run([]string{"-dir", "analyzers/errswallow/fixtures", "-only", "errswallow"}, out, errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on a fixture with findings", code)
	}
	raw, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "error result of Encode is discarded") {
		t.Errorf("stdout missing the re-introduced writeJSON-style finding:\n%s", raw)
	}
}
