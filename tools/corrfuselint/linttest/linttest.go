// Package linttest runs an analyzer over a fixture module and checks
// its diagnostics against // want "regexp" comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout: each analyzer package keeps a `fixtures` directory
// holding a tiny self-contained Go module (its own go.mod, stdlib-only
// imports plus fake local packages that mimic the shapes the analyzer
// matches on). Lines expected to be flagged end with
//
//	code() // want "substring or regexp of the message"
//
// multiple expectations stack as further quoted strings. A fixture line
// carrying a //lint:ignore directive and no want comment doubles as the
// suppression-path test: the run fails if the ignored finding leaks.
package linttest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"corrfuselint/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture module at dir, applies the analyzer to every
// package in it, and reports mismatches between the diagnostics and the
// fixture's want comments on t.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	prog, err := lint.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := prog.Run([]*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range prog.Targets() {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, q := range splitQuoted(t, pos, m[1]) {
						rx, err := regexp.Compile(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q, err)
						}
						wants[k] = append(wants[k], rx)
					}
				}
			}
		}
	}

	matched := make(map[key][]bool)
	for k, rxs := range wants {
		matched[k] = make([]bool, len(rxs))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for i, rx := range wants[k] {
			if !matched[k][i] && rx.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, rxs := range wants {
		for i, rx := range rxs {
			if !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, rx)
			}
		}
	}
}

// splitQuoted parses the quoted expectation list after "// want".
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s:%d: want expectations must be quoted strings, got %q", pos.Filename, pos.Line, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s:%d: unterminated want pattern in %q", pos.Filename, pos.Line, s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, s[:end+1], err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
