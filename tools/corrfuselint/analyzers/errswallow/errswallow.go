// Package errswallow flags discarded error results from the I/O and
// encoding calls whose silent failures have bitten this repo before:
// serve's writeJSON dropped Encode errors until PR 7 counted them, and
// obs's JSON-log fallback dropped a Marshal error. An acknowledged
// response or a persisted record whose write failed invisibly is a
// durability bug, so these errors must be handled, logged-and-counted
// (the writeJSON pattern), or suppressed with a written-down reason.
package errswallow

import (
	"go/ast"
	"go/types"

	"corrfuselint/lint"
)

// alwaysWatch are callee names whose ignored error is flagged wherever
// the call appears (any receiver except the known never-fail buffers).
var alwaysWatch = map[string]bool{
	"Write": true, "WriteTo": true,
	"Encode": true, "EncodeToken": true,
	"Marshal": true, "MarshalIndent": true,
	"Close": true, "Flush": true, "Sync": true,
}

// sinkWatch are print-style helpers flagged only when their first
// argument is a risky sink (a real file, socket or HTTP response) —
// flagging every Fprintf into a strings.Builder would be noise.
var sinkWatch = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true, "WriteString": true,
}

var Analyzer = &lint.Analyzer{
	Name: "errswallow",
	Doc:  "discarded error results from Write/Encode/Marshal/Close/Fprintf-class calls in non-test code",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// Deferred Close on a read path is the idiom; write
				// paths in this repo check Close explicitly.
				return false
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkDiscarded(pass, call, nil)
				}
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 {
					if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
						checkDiscarded(pass, call, n.Lhs)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkDiscarded reports call if it returns an error that lhs discards:
// every error-typed result position is the blank identifier (or, for an
// expression statement, lhs is nil and every result is dropped).
func checkDiscarded(pass *lint.Pass, call *ast.CallExpr, lhs []ast.Expr) {
	name := lint.CalleeName(call)
	sinkGated := sinkWatch[name]
	if !alwaysWatch[name] && !sinkGated {
		return
	}
	results := lint.ResultTuple(pass.Info, call)
	if results == nil {
		return
	}
	errIdx := -1
	for i := 0; i < results.Len(); i++ {
		if lint.IsErrorType(results.At(i).Type()) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return
	}
	if lhs != nil {
		if errIdx >= len(lhs) || !isBlank(lhs[errIdx]) {
			return
		}
	}
	if recv := lint.Receiver(call); recv != nil {
		t := pass.Info.Types[recv].Type
		if lint.IsNamed(t, "strings", "Builder") || lint.IsNamed(t, "bytes", "Buffer") {
			return // cannot fail: Write into an in-memory buffer
		}
		// hash.Hash documents "It never returns an error" for Write.
		for _, h := range []string{"Hash", "Hash32", "Hash64"} {
			if lint.IsNamed(t, "hash", h) {
				return
			}
		}
	}
	if sinkGated {
		if len(call.Args) == 0 || !riskySink(pass, call.Args[0]) {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"error result of %s is discarded: handle it, or log-and-count it like serve's writeJSON does", name)
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// riskySink reports whether the write target is a sink whose failure a
// caller must not ignore: an *os.File (other than the process's own
// stdout/stderr), a net.Conn, or an http.ResponseWriter.
func riskySink(pass *lint.Pass, arg ast.Expr) bool {
	arg = ast.Unparen(arg)
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj, ok := pass.Info.Uses[id].(*types.PkgName); ok && obj.Imported().Path() == "os" &&
				(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
				return false // best-effort diagnostics to the terminal
			}
		}
	}
	t := pass.Info.Types[arg].Type
	if t == nil {
		return false
	}
	return lint.IsNamed(t, "os", "File") ||
		lint.IsNamed(t, "net", "Conn") ||
		lint.IsNamed(t, "net/http", "ResponseWriter")
}
