// Package fix exercises errswallow: flagged discards, the never-fail
// receiver exemptions, the stderr exemption, and the suppression path.
package fix

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"strings"
)

// respond re-introduces the exact writeJSON-shaped bug this analyzer
// exists to catch: the Encode error vanishes and the client gets a 2xx
// with a truncated body nobody counts.
func respond(w http.ResponseWriter, v any) {
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.Encode(v) // want "error result of Encode is discarded"
}

func marshalDrop(v any) []byte {
	raw, _ := json.Marshal(v) // want "error result of Marshal is discarded"
	return raw
}

func closeDrop(f *os.File) {
	f.Close() // want "error result of Close is discarded"
}

func deferredCloseOK(f *os.File) []byte {
	defer f.Close() // deferred closes are the read-path idiom: not flagged
	return nil
}

func buffersOK() string {
	var b strings.Builder
	b.WriteString("x")
	var buf bytes.Buffer
	buf.Write([]byte("y"))
	return b.String() + buf.String()
}

func hashOK(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p) // hash.Hash documents Write never returns an error
	return h.Sum64()
}

func fprintfSinks(f *os.File, w http.ResponseWriter, b *strings.Builder) {
	fmt.Fprintf(f, "x")            // want "error result of Fprintf is discarded"
	fmt.Fprintf(w, "y")            // want "error result of Fprintf is discarded"
	fmt.Fprintf(os.Stderr, "diag") // stderr is best-effort terminal output
	fmt.Fprintf(b, "z")            // in-memory sink: not flagged
}

func handledOK(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func suppressed(f *os.File) {
	//lint:ignore errswallow fixture proves the suppression path works
	f.Close()
}
