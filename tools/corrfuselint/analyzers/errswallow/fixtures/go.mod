module errswallowfix

go 1.24
