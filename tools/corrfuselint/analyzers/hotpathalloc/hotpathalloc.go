// Package hotpathalloc is the enforcement hook for the roadmap's
// zero-allocation serving target: inside a function whose doc carries
// //corrfuse:hotpath (index.Lookup, the score/observe handlers), it
// flags the allocation sources those paths must shed — encoding/json
// calls, fmt.Sprintf-family formatting, and map construction. Findings
// either get optimized away or carry a //lint:ignore stating why the
// allocation is acceptable (e.g. once-per-request, not per-triple), so
// the hot-path baseline stays intentional while the fast paths land.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"corrfuselint/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "hotpathalloc",
	Doc:  "encoding/json, fmt.Sprintf and map allocation inside //corrfuse:hotpath functions",
	Run:  run,
}

var fmtAllocs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true, "Appendf": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; !pass.Marked(obj, "hotpath") {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					obj := lint.Callee(pass.Info, n)
					switch pkg := lint.PkgPathOf(obj); {
					case pkg == "encoding/json":
						pass.Reportf(n.Pos(),
							"%s is a //corrfuse:hotpath function but calls encoding/json.%s: reflection-based encoding allocates per call (roadmap item 3 targets pooled buffers / generated fast paths)",
							name, obj.Name())
					case pkg == "fmt" && fmtAllocs[obj.Name()]:
						pass.Reportf(n.Pos(),
							"%s is a //corrfuse:hotpath function but calls fmt.%s: formatting allocates its result on every call",
							name, obj.Name())
					}
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
						if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
							if tv, ok := pass.Info.Types[n]; ok {
								if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
									pass.Reportf(n.Pos(),
										"%s is a //corrfuse:hotpath function but allocates a map: maps cannot be stack-allocated or pooled cheaply", name)
								}
							}
						}
					}
				case *ast.CompositeLit:
					if tv, ok := pass.Info.Types[n]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(),
								"%s is a //corrfuse:hotpath function but allocates a map literal: maps cannot be stack-allocated or pooled cheaply", name)
						}
					}
				}
				return true
			})
		}
	}
	return nil
}
