// Package hotpathalloc is the enforcement hook for the roadmap's
// zero-allocation serving target: inside a function whose doc carries
// //corrfuse:hotpath (index.Lookup, the score/observe handlers), it
// flags the allocation sources those paths must shed — encoding/json
// calls, fmt.Sprintf/Append-family formatting, map construction, and
// string<->[]byte conversions (each one copies its operand on every
// call; hot paths share bytes via the codec package's pooled buffers
// instead). Findings either get optimized away or carry a //lint:ignore
// stating why the allocation is acceptable (e.g. once-per-request, not
// per-triple), so the hot-path baseline stays intentional while the
// fast paths land.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"corrfuselint/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "hotpathalloc",
	Doc:  "encoding/json, fmt formatting, map allocation and string<->[]byte conversion inside //corrfuse:hotpath functions",
	Run:  run,
}

var fmtAllocs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	// The Append family reuses the caller's buffer for the OUTPUT, but
	// still boxes every operand into a []any and walks it reflectively —
	// per-call allocations the escape analyzer cannot remove.
	"Appendf": true, "Append": true, "Appendln": true,
}

// isString reports whether t's underlying type is a string.
func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteSlice reports whether t is a []byte (or a named slice of a byte
// type — same conversion cost).
func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && e.Kind() == types.Byte
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; !pass.Marked(obj, "hotpath") {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					// A CallExpr whose Fun is a type is a conversion:
					// string([]byte) and []byte(string) copy their operand
					// on every call (only a handful of compiler-recognized
					// patterns, like map indexing, avoid the copy — and
					// those deserve an explicit //lint:ignore).
					if tv, ok := pass.Info.Types[ast.Unparen(n.Fun)]; ok && tv.IsType() && len(n.Args) == 1 {
						if av, ok := pass.Info.Types[n.Args[0]]; ok {
							dst, src := tv.Type.Underlying(), av.Type.Underlying()
							switch {
							case isByteSlice(dst) && isString(src):
								pass.Reportf(n.Pos(),
									"%s is a //corrfuse:hotpath function but converts a string to []byte: the conversion copies and allocates on every call", name)
							case isString(dst) && isByteSlice(src):
								pass.Reportf(n.Pos(),
									"%s is a //corrfuse:hotpath function but converts a []byte to string: the conversion copies and allocates on every call", name)
							}
						}
					}
					obj := lint.Callee(pass.Info, n)
					switch pkg := lint.PkgPathOf(obj); {
					case pkg == "encoding/json":
						pass.Reportf(n.Pos(),
							"%s is a //corrfuse:hotpath function but calls encoding/json.%s: reflection-based encoding allocates per call (roadmap item 3 targets pooled buffers / generated fast paths)",
							name, obj.Name())
					case pkg == "fmt" && fmtAllocs[obj.Name()]:
						pass.Reportf(n.Pos(),
							"%s is a //corrfuse:hotpath function but calls fmt.%s: formatting allocates its result on every call",
							name, obj.Name())
					}
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
						if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
							if tv, ok := pass.Info.Types[n]; ok {
								if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
									pass.Reportf(n.Pos(),
										"%s is a //corrfuse:hotpath function but allocates a map: maps cannot be stack-allocated or pooled cheaply", name)
								}
							}
						}
					}
				case *ast.CompositeLit:
					if tv, ok := pass.Info.Types[n]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(),
								"%s is a //corrfuse:hotpath function but allocates a map literal: maps cannot be stack-allocated or pooled cheaply", name)
						}
					}
				}
				return true
			})
		}
	}
	return nil
}
