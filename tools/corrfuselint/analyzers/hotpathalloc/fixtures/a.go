// Package fix exercises hotpathalloc: allocation sources inside
// //corrfuse:hotpath functions are flagged, the same code on cold paths
// is not, and the suppression path works.
package fix

import (
	"encoding/json"
	"fmt"
)

// lookup is allocation-free, like index.Lookup: no findings.
//
//corrfuse:hotpath
func lookup(ids []int) int {
	total := 0
	for _, id := range ids {
		total += id
	}
	return total
}

//corrfuse:hotpath
func respond(v any) ([]byte, error) {
	return json.Marshal(v) // want "calls encoding/json.Marshal"
}

//corrfuse:hotpath
func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want "calls fmt.Sprintf"
}

//corrfuse:hotpath
func table() map[string]int {
	m := make(map[string]int) // want "allocates a map"
	m["k"] = 1
	return m
}

//corrfuse:hotpath
func literal() map[string]int {
	return map[string]int{"k": 1} // want "allocates a map literal"
}

//corrfuse:hotpath
func appendFormat(dst []byte, n int) []byte {
	dst = fmt.Append(dst, n)         // want "calls fmt.Append"
	dst = fmt.Appendln(dst, n)       // want "calls fmt.Appendln"
	return fmt.Appendf(dst, "%d", n) // want "calls fmt.Appendf"
}

//corrfuse:hotpath
func toBytes(s string) []byte {
	return []byte(s) // want "converts a string to \\[\\]byte"
}

//corrfuse:hotpath
func toString(b []byte) string {
	return string(b) // want "converts a \\[\\]byte to string"
}

type namedBytes []byte

//corrfuse:hotpath
func namedConversions(s string, b namedBytes) (namedBytes, string) {
	nb := namedBytes(s)  // want "converts a string to \\[\\]byte"
	return nb, string(b) // want "converts a \\[\\]byte to string"
}

// conversionFreeCasts stays quiet: single-byte/rune conversions and
// []byte->[]byte identity shapes do not copy a string.
//
//corrfuse:hotpath
func conversionFreeCasts(b byte, r rune, bs []byte) (string, []byte) {
	return string(r), []byte(bs[:1])
}

// coldPath is unannotated: the same allocations are fine off the hot path.
func coldPath(v any) (string, error) {
	raw, err := json.Marshal(v)
	return fmt.Sprintf("%d bytes", len(raw)), err
}

// coldConversions is unannotated: conversions are fine off the hot path.
func coldConversions(s string, b []byte) ([]byte, string) {
	return []byte(s), string(b)
}

//corrfuse:hotpath
func suppressed(v any) map[string]any {
	//lint:ignore hotpathalloc response assembly allocates once per request, not per item
	return map[string]any{"v": v}
}
