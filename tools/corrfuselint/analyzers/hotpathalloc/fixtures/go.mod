module hotpathallocfix

go 1.24
