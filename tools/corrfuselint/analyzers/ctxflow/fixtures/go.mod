module ctxflowfix

go 1.24
