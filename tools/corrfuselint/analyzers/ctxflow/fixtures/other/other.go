// Package other is outside ctxflow's internal/serve and internal/wal
// scopes: a detached context here is a caller decision, not a request-
// path regression, and produces no diagnostics.
package other

import "context"

func Detached() context.Context { return context.Background() }
