// Package serve sits on a path containing internal/serve, so ctxflow's
// scope rule applies to it.
package serve

import "context"

func detach() context.Context {
	return context.Background() // want "context.Background\\(\\) detaches this call chain"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO\\(\\) detaches this call chain"
}

func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx) // threading the caller's ctx: not flagged
}

func suppressed() context.Context {
	//lint:ignore ctxflow fixture proves the suppression path works
	return context.Background()
}
