// Package repl sits on a path containing internal/repl, so ctxflow's
// scope rule applies: a replication fetch loop or long-poll detached
// from its caller's context would outlive shutdown.
package repl

import "context"

func detach() context.Context {
	return context.Background() // want "context.Background\\(\\) detaches this call chain"
}

func fetchLoop(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, 0) // threading the caller's ctx: not flagged
}
