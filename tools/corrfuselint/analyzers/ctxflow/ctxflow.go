// Package ctxflow guards the context-propagation contract PR 7 wired
// through the request path: handlers thread r.Context() and the WAL
// waits under wal.CommitContext, so deadlines and client disconnects
// reach the durability and rebuild layers. A context.Background() (or
// TODO()) inside internal/serve or internal/wal silently detaches a
// call chain from that budget — every legitimate detachment (the
// background refresher, the coalesced-rebuild work context) must say
// why with a //lint:ignore. internal/repl joined the scope with PR 9:
// replication long-polls and fetch loops must die with their caller's
// context, never outlive it.
package ctxflow

import (
	"go/ast"
	"strings"

	"corrfuselint/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background()/TODO() inside internal/serve, internal/wal and internal/repl request paths",
	Run:  run,
}

// scopes are the package-path fragments the invariant covers.
var scopes = []string{"internal/serve", "internal/wal", "internal/repl"}

func run(pass *lint.Pass) error {
	inScope := false
	for _, s := range scopes {
		if strings.Contains(pass.PkgPath, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := lint.Callee(pass.Info, call)
			if lint.PkgPathOf(obj) != "context" {
				return true
			}
			if name := obj.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s() detaches this call chain from the request/caller deadline budget: thread the caller's ctx (r.Context(), CommitContext) instead", name)
			}
			return true
		})
	}
	return nil
}
