// Package labelbound guards metric-label cardinality: a value reaching
// (*CounterVec).With / (*HistogramVec).With from request data grows one
// time series per distinct input, which is how PR 7's rate limiter
// nearly let clients spray unbounded corrfused_ratelimited_total
// labels until the 64-key cap. A label value must be provably bounded:
//
//   - a compile-time constant,
//   - the range variable of a loop over a package-level slice (the
//     pre-created endpoint/stage enumerations), or
//   - the result of a cardinality-capping helper whose declaration is
//     annotated //corrfuse:labelcap (e.g. serve's rateKeyLabel).
//
// Anything else is flagged; a bounded-by-construction value (HTTP
// status codes) may carry a //lint:ignore with the argument written out.
package labelbound

import (
	"go/ast"
	"go/types"

	"corrfuselint/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "labelbound",
	Doc:  "CounterVec/HistogramVec label values must be constants, bounded enumerations, or pass a //corrfuse:labelcap helper",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		// rangeBounded maps objects bound as `for _, v := range pkgLevelVar`
		// values to true, per file (objects are function-scoped anyway).
		rangeBounded := map[types.Object]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			val, ok := rs.Value.(*ast.Ident)
			if !ok {
				return true
			}
			x, ok := ast.Unparen(rs.X).(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.Info.Uses[x]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
				if vobj := pass.Info.Defs[val]; vobj != nil {
					rangeBounded[vobj] = true
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || lint.CalleeName(call) != "With" || len(call.Args) != 1 {
				return true
			}
			recv := lint.Receiver(call)
			if recv == nil {
				return true
			}
			named := lint.NamedType(pass.Info.Types[recv].Type)
			if named == nil {
				return true
			}
			if name := named.Obj().Name(); name != "CounterVec" && name != "HistogramVec" {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			if bounded(pass, rangeBounded, arg) {
				return true
			}
			pass.Reportf(arg.Pos(),
				"label value %s is not provably bounded: use a constant, a package-level enumeration, or a //corrfuse:labelcap helper so one client cannot grow a time series per request",
				lint.Render(pass.Fset, arg))
			return true
		})
	}
	return nil
}

func bounded(pass *lint.Pass, rangeBounded map[types.Object]bool, arg ast.Expr) bool {
	// Compile-time constant (literal, const, concatenation thereof).
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
		return true
	}
	// Range variable over a package-level enumeration.
	if id, ok := arg.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil && rangeBounded[obj] {
			return true
		}
	}
	// Result of an annotated cardinality-capping helper.
	if inner, ok := arg.(*ast.CallExpr); ok {
		if obj := lint.Callee(pass.Info, inner); pass.Marked(obj, "labelcap") {
			return true
		}
	}
	return false
}
