// Package fix exercises labelbound: the three bounded forms pass, raw
// request data and local enumerations are flagged, and the suppression
// path works.
package fix

import "labelboundfix/obs"

var endpoints = []string{"observe", "score"}

const fixed = "fixed"

var (
	vec  = &obs.CounterVec{}
	hist = &obs.HistogramVec{}
)

func constants() {
	vec.With("observe").Inc()
	vec.With(fixed).Inc()
	vec.With("pre" + fixed).Inc()
}

func enumeration() {
	for _, e := range endpoints {
		vec.With(e).Inc()
	}
}

// capKey caps cardinality the way serve's rateKeyLabel does.
//
//corrfuse:labelcap
func capKey(key string) string {
	if len(key) > 8 {
		return "other"
	}
	return key
}

func capped(key string) {
	vec.With(capKey(key)).Inc()
}

func unbounded(userInput string) {
	vec.With(userInput).Inc() // want "label value userInput is not provably bounded"
}

func localRange() {
	local := []string{"a", "b"}
	for _, e := range local {
		vec.With(e).Inc() // want "label value e is not provably bounded"
	}
}

func histUnbounded(path string) {
	hist.With(path).Observe(1) // want "label value path is not provably bounded"
}

func suppressed(status string) {
	//lint:ignore labelbound HTTP status codes are a bounded set
	vec.With(status).Inc()
}
