// Package obs mimics the metric-vector shapes labelbound matches on:
// With methods on types named CounterVec and HistogramVec.
package obs

type Counter struct{}

func (c *Counter) Inc() {}

type CounterVec struct{}

func (v *CounterVec) With(label string) *Counter { return &Counter{} }

type Histogram struct{}

func (h *Histogram) Observe(x float64) {}

type HistogramVec struct{}

func (v *HistogramVec) With(label string) *Histogram { return &Histogram{} }
