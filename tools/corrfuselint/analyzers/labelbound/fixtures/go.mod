module labelboundfix

go 1.24
