// Package lockacrossio flags sync.Mutex/RWMutex critical sections that
// reach fsync or network I/O: (*os.File).Sync, the WAL's commit/sync
// entry points, net.Conn traffic, and http.Client round trips. The
// WAL's group-commit discipline (PR 5) exists precisely because one
// fsync under a hot mutex serializes every writer behind disk latency;
// this analyzer keeps that discipline from regressing.
//
// The analysis is intraprocedural and linear: it tracks Lock/Unlock
// pairs in source order inside one function body, so a lock released on
// one branch is treated as released. That under-reports; it never
// blocks a legitimate pattern. A deferred Unlock holds to function end.
package lockacrossio

import (
	"go/ast"
	"go/types"
	"strings"

	"corrfuselint/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "lockacrossio",
	Doc:  "sync.Mutex/RWMutex held across File.Sync, wal.Commit*/Sync, or network I/O",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// checkBody scans one function body (and its nested literals, each with
// its own lock scope) in source order.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	held := map[string]bool{} // rendered receiver expr -> currently held
	var heldOrder []string

	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, n.Body)
			return false
		case *ast.DeferStmt:
			// A deferred Unlock runs at return: the lock stays held for
			// the rest of the body. Nothing to update; skip the call so
			// it is not mistaken for an inline Unlock.
			return false
		case *ast.CallExpr:
			if recv, op := mutexOp(pass, n); op != "" {
				key := lint.Render(pass.Fset, recv)
				switch op {
				case "Lock", "RLock", "TryLock", "TryRLock":
					if !held[key] {
						held[key] = true
						heldOrder = append(heldOrder, key)
					}
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return true
			}
			if what := ioCall(pass, n); what != "" {
				var locked []string
				for _, key := range heldOrder {
					if held[key] {
						locked = append(locked, key)
					}
				}
				if len(locked) > 0 {
					pass.Reportf(n.Pos(),
						"%s called while holding %s: fsync/network waits under a mutex serialize every other holder (move the I/O outside the critical section, as wal's group commit does)",
						what, strings.Join(locked, ", "))
				}
			}
		}
		return true
	}
	ast.Inspect(body, scan)
}

// mutexOp matches x.Lock()/x.Unlock()-style calls whose method resolves
// to sync.Mutex or sync.RWMutex (directly or through embedding) and
// returns the receiver expression and operation name.
func mutexOp(pass *lint.Pass, call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, ""
	}
	obj := lint.Callee(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, ""
	}
	if !lint.IsNamed(recv.Type(), "sync", "Mutex") && !lint.IsNamed(recv.Type(), "sync", "RWMutex") {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// ioCall classifies calls that wait on disk or the network.
func ioCall(pass *lint.Pass, call *ast.CallExpr) string {
	name := lint.CalleeName(call)
	obj := lint.Callee(pass.Info, call)
	if obj == nil {
		return ""
	}
	// Package-level network helpers: net.Dial*, http.Get/Post/...
	switch pkg := lint.PkgPathOf(obj); pkg {
	case "net":
		if strings.HasPrefix(name, "Dial") {
			return "net." + name
		}
	case "net/http":
		switch name {
		case "Get", "Head", "Post", "PostForm":
			return "http." + name
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	switch {
	case name == "Sync" && lint.IsNamed(rt, "os", "File"):
		return "(*os.File).Sync"
	case lint.IsNamed(rt, "net/http", "Client") && name == "Do":
		return "(*http.Client).Do"
	case lint.IsNamed(rt, "net", "Conn") && (name == "Read" || name == "Write" || name == "Close"):
		return "net.Conn." + name
	}
	// The repo's WAL: any Commit*/Sync method on a type declared in a
	// package named wal is a durability wait (group-commit fsync).
	if named := lint.NamedType(rt); named != nil && named.Obj().Pkg() != nil {
		p := named.Obj().Pkg().Path()
		if p == "wal" || strings.HasSuffix(p, "/wal") {
			if name == "Sync" || strings.HasPrefix(name, "Commit") {
				return "wal." + named.Obj().Name() + "." + name
			}
		}
	}
	return ""
}
