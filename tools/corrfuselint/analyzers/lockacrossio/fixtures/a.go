// Package fix exercises lockacrossio: fsync and WAL waits under a held
// mutex are flagged; unlock-before-I/O, I/O-before-lock, nested literal
// scopes and the suppression path are not.
package fix

import (
	"os"
	"sync"

	"lockacrossiofix/wal"
)

type srv struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	file *os.File
	log  *wal.WAL
}

func (s *srv) syncUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.file.Sync() // want "Sync called while holding s.mu"
}

func (s *srv) commitUnderRLock(seq uint64) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.log.Commit(seq) // want "wal.WAL.Commit called while holding s.rw"
}

func (s *srv) bothHeld(seq uint64) error {
	s.mu.Lock()
	s.rw.Lock()
	defer s.rw.Unlock()
	defer s.mu.Unlock()
	return s.log.Sync() // want "holding s.mu, s.rw"
}

func (s *srv) unlockBeforeSync() error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.file.Sync() // released before the fsync: not flagged
}

func (s *srv) ioBeforeLock() error {
	if err := s.file.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return nil
}

func (s *srv) literalScope() func() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The literal runs later, outside this critical section: its body is
	// a fresh lock scope.
	return func() error { return s.file.Sync() }
}

func (s *srv) suppressed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockacrossio fixture proves the suppression path works
	return s.file.Sync()
}
