module lockacrossiofix

go 1.24
