// Package wal mimics the shape lockacrossio matches on: Commit*/Sync
// methods on a type declared in a package named wal are durability waits.
package wal

type WAL struct{}

func (w *WAL) Commit(seq uint64) error { return nil }

func (w *WAL) CommitContext(seq uint64) error { return nil }

func (w *WAL) Sync() error { return nil }
