// Package fix exercises regonce: duplicate families (direct and through
// a closure helper), empty HELP, unresolvable names, uncalled helpers,
// the exported-helper deferral, and the suppression path.
package fix

import "regoncefix/obs"

const seqName = "app_seq"

func register(r *obs.Registry) {
	r.Counter("app_requests_total", "Requests served.")
	r.Counter("app_requests_total", "Registered twice.") // want "registered more than once"
	r.GaugeFunc("app_up", "", nil)                       // want "empty HELP string"
	r.CounterVec("app_errors_total", "Errors by kind.", "kind")
	obs.RegisterBuildInfo(r, "app_build_info")

	gauge := func(name, help string) {
		r.GaugeFunc(name, help, nil)
	}
	gauge(seqName, "Last sequence number.")
	gauge("app_seq", "Same family again, through the helper.") // want "registered more than once"

	var dyn string
	r.Counter(dyn, "Dynamic name.") // want "not a compile-time constant"

	uncalled := func(name string) {
		r.SampleFunc(name, "Helper nobody calls.", "gauge", nil) // want "no resolvable call sites"
	}
	_ = uncalled
}

// RegisterSeq is exported: its name parameter is checked at call sites
// outside this package, not at the declaration.
func RegisterSeq(r *obs.Registry, name string) {
	r.GaugeFunc(name, "Sequence gauge.", nil)
}

func suppressed(r *obs.Registry) {
	//lint:ignore regonce fixture proves the suppression path works
	r.Counter("app_requests_total", "Third registration, suppressed.")
}
