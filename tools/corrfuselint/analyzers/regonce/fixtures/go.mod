module regoncefix

go 1.24
