// Package obs mimics the registration surface regonce matches on:
// family-registering methods on a type named Registry, plus the
// exported package-level helper.
package obs

type Registry struct{}

type Counter struct{}

type CounterVec struct{}

type Sample struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

func (r *Registry) CounterVec(name, help, label string) *CounterVec { return &CounterVec{} }

func (r *Registry) GaugeFunc(name, help string, f func() float64) {}

func (r *Registry) SampleFunc(name, help, typ string, f func() []Sample) {}

func RegisterBuildInfo(r *Registry, name string) {}
