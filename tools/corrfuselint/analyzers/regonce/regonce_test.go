package regonce

import (
	"testing"

	"corrfuselint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "fixtures", Analyzer)
}
