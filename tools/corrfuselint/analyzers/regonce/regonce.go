// Package regonce proves every obs metric family is registered exactly
// once with a non-empty HELP string — at build time, instead of at the
// first scrape panic (obs.Registry.register panics on duplicates at
// runtime; this moves the check into CI).
//
// Family names must be resolvable to compile-time constants. The one
// indirection the repo uses is supported: an unexported helper (func or
// closure, e.g. metrics.go's walGauge/perShard) that forwards a name
// parameter into a registration call is resolved through its same-
// package call sites, each contributing its constant argument.
// Exported helpers (obs.RegisterBuildInfo) are skipped at declaration
// and checked at their call sites instead.
package regonce

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"corrfuselint/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "regonce",
	Doc:  "every metric family registered exactly once, HELP non-empty, names compile-time resolvable",
	Run:  run,
}

// regMethods maps Registry method names to (name, help) argument
// positions; help < 0 means the method takes no help string.
var regMethods = map[string][2]int{
	"Counter":      {0, 1},
	"CounterVec":   {0, 1},
	"GaugeFunc":    {0, 1},
	"SampleFunc":   {0, 1},
	"Histogram":    {0, 1},
	"HistogramVec": {0, 1},
}

// regFuncs are package-level registration helpers: RegisterBuildInfo
// takes the registry first and the family name second.
var regFuncs = map[string][2]int{
	"RegisterBuildInfo": {1, -1},
}

type regSite struct {
	name string
	pos  token.Pos
}

func run(pass *lint.Pass) error {
	idx := buildIndex(pass)
	seen := map[string]token.Pos{}
	record := func(name string, pos token.Pos) {
		if first, dup := seen[name]; dup {
			pass.Reportf(pos, "metric family %q is registered more than once (first at %s); obs.Registry panics on duplicates at runtime",
				name, pass.Fset.Position(first))
			return
		}
		seen[name] = pos
	}

	for _, f := range pass.Files {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			nameIdx, helpIdx, ok := registrationCall(pass, call)
			if !ok {
				return true
			}
			if len(call.Args) <= nameIdx {
				return true
			}
			for _, site := range resolveArg(pass, idx, stack, call.Args[nameIdx], "family name") {
				record(site.name, site.pos)
			}
			if helpIdx >= 0 && helpIdx < len(call.Args) {
				for _, site := range resolveArg(pass, idx, stack, call.Args[helpIdx], "HELP string") {
					if strings.TrimSpace(site.name) == "" {
						pass.Reportf(site.pos, "metric family registered with an empty HELP string: name the signal so dashboards and the exposition lint can rely on it")
					}
				}
			}
			return true
		})
	}
	return nil
}

// registrationCall matches r.Counter(...)-style Registry method calls
// and package-level registration funcs, returning argument positions.
func registrationCall(pass *lint.Pass, call *ast.CallExpr) (nameIdx, helpIdx int, ok bool) {
	name := lint.CalleeName(call)
	if pos, isMethod := regMethods[name]; isMethod {
		recv := lint.Receiver(call)
		if recv == nil {
			return 0, 0, false
		}
		named := lint.NamedType(pass.Info.Types[recv].Type)
		if named == nil || named.Obj().Name() != "Registry" {
			return 0, 0, false
		}
		return pos[0], pos[1], true
	}
	if pos, isFunc := regFuncs[name]; isFunc {
		obj := lint.Callee(pass.Info, call)
		if _, isFn := obj.(*types.Func); !isFn {
			return 0, 0, false
		}
		return pos[0], pos[1], true
	}
	return 0, 0, false
}

// resolveArg resolves one registration argument to constant strings:
// directly constant, or — when it is a parameter of the enclosing
// unexported function/closure — through that helper's same-package call
// sites (one level). Unresolvable arguments are reported; parameters of
// exported functions are deferred to their callers.
func resolveArg(pass *lint.Pass, idx *pkgIndex, stack []ast.Node, arg ast.Expr, what string) []regSite {
	arg = ast.Unparen(arg)
	if s, ok := constString(pass, arg); ok {
		return []regSite{{name: s, pos: arg.Pos()}}
	}
	if id, ok := arg.(*ast.Ident); ok {
		obj := pass.Info.Uses[id]
		if owner, paramIdx := idx.paramOf(pass, stack, obj); owner != nil {
			if fn, ok := owner.(*types.Func); ok && fn.Exported() {
				return nil // checked at the exported helper's call sites
			}
			callers := idx.callsByObj[owner]
			if len(callers) == 0 {
				pass.Reportf(arg.Pos(), "cannot prove this %s is registered once: helper %s has no resolvable call sites in this package", what, owner.Name())
				return nil
			}
			var out []regSite
			for _, c := range callers {
				if paramIdx >= len(c.Args) {
					continue
				}
				ca := ast.Unparen(c.Args[paramIdx])
				if s, ok := constString(pass, ca); ok {
					out = append(out, regSite{name: s, pos: ca.Pos()})
				} else {
					pass.Reportf(ca.Pos(), "%s passed to registration helper %s is not a compile-time constant", what, owner.Name())
				}
			}
			return out
		}
	}
	pass.Reportf(arg.Pos(), "%s is not a compile-time constant: regonce cannot prove the family is registered exactly once", what)
	return nil
}

func constString(pass *lint.Pass, e ast.Expr) (string, bool) {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// pkgIndex caches the package's call graph fragments regonce needs.
type pkgIndex struct {
	// callsByObj lists the package's call sites per callee object
	// (functions and closure variables alike).
	callsByObj map[types.Object][]*ast.CallExpr
	// litOwner maps closure literals to the variable object they are
	// bound to (walGauge := func(...)).
	litOwner map[*ast.FuncLit]types.Object
}

func buildIndex(pass *lint.Pass) *pkgIndex {
	idx := &pkgIndex{
		callsByObj: map[types.Object][]*ast.CallExpr{},
		litOwner:   map[*ast.FuncLit]types.Object{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if obj := lint.Callee(pass.Info, n); obj != nil {
					idx.callsByObj[obj] = append(idx.callsByObj[obj], n)
				} else if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if vobj := pass.Info.Uses[id]; vobj != nil {
						idx.callsByObj[vobj] = append(idx.callsByObj[vobj], n)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							idx.litOwner[lit] = obj
						} else if obj := pass.Info.Uses[id]; obj != nil {
							idx.litOwner[lit] = obj
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if lit, ok := v.(*ast.FuncLit); ok && i < len(n.Names) {
						if obj := pass.Info.Defs[n.Names[i]]; obj != nil {
							idx.litOwner[lit] = obj
						}
					}
				}
			}
			return true
		})
	}
	return idx
}

// paramOf reports whether obj is a parameter of the function enclosing
// the current node (per the ancestor stack), returning the enclosing
// function's object (FuncDecl object or closure variable) and the
// flattened parameter index.
func (idx *pkgIndex) paramOf(pass *lint.Pass, stack []ast.Node, obj types.Object) (types.Object, int) {
	if obj == nil {
		return nil, 0
	}
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		var owner types.Object
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			ft, owner = n.Type, idx.litOwner[n]
		case *ast.FuncDecl:
			ft, owner = n.Type, pass.Info.Defs[n.Name]
		default:
			continue
		}
		pi := 0
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if pass.Info.Defs[name] == obj {
					return owner, pi
				}
				pi++
			}
		}
		return nil, 0 // obj is not a parameter of the innermost function
	}
	return nil, 0
}
