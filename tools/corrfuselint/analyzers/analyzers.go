// Package analyzers enumerates the corrfuselint suite: one analyzer
// per invariant the repo has already paid to learn (see each package's
// doc for the motivating PR).
package analyzers

import (
	"corrfuselint/analyzers/ctxflow"
	"corrfuselint/analyzers/errswallow"
	"corrfuselint/analyzers/hotpathalloc"
	"corrfuselint/analyzers/labelbound"
	"corrfuselint/analyzers/lockacrossio"
	"corrfuselint/analyzers/regonce"
	"corrfuselint/lint"
)

// All returns the full suite in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		ctxflow.Analyzer,
		errswallow.Analyzer,
		hotpathalloc.Analyzer,
		labelbound.Analyzer,
		lockacrossio.Analyzer,
		regonce.Analyzer,
	}
}
