// Command corrfuselint runs the repo's invariant analyzers (see
// package analyzers) over a module and fails if any diagnostic
// survives //lint:ignore suppression.
//
// Usage, from the repository root (the go.work workspace makes the
// nested module runnable in place):
//
//	go run ./tools/corrfuselint ./...
//	go run ./tools/corrfuselint -dir some/module ./...
//	go run ./tools/corrfuselint -only errswallow,ctxflow ./...
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"corrfuselint/analyzers"
	"corrfuselint/lint"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("corrfuselint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module directory to analyze (patterns resolve relative to it)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "corrfuselint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "corrfuselint: %v\n", err)
		return 2
	}
	diags, err := prog.Run(suite)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if err != nil {
		fmt.Fprintf(stderr, "corrfuselint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "corrfuselint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
