package corrfuse

import (
	"fmt"

	"corrfuse/internal/core"
	"corrfuse/internal/normalize"
	"corrfuse/internal/resolve"
	"corrfuse/internal/triple"
)

// ConfidenceObservation is a source claim with an extraction confidence
// score (§2.1). Build a Dataset from a batch of them with Materialize.
type ConfidenceObservation = triple.ConfidenceObservation

// Materialize thresholds confidence-scored observations into a Dataset:
// a source outputs a triple iff its confidence is at least threshold.
func Materialize(obs []ConfidenceObservation, threshold float64) (*Dataset, error) {
	return triple.Materialize(obs, threshold)
}

// Normalizer canonicalizes triples (schema mapping and reference
// reconciliation — the pre-processing §2.1 assumes).
type Normalizer = normalize.Normalizer

// NewNormalizer returns an empty Normalizer; add aliases with MapPredicate,
// MapEntity and MapValue, then rewrite a dataset with its Dataset method.
func NewNormalizer() *Normalizer { return normalize.New() }

// Incremental maintains PrecRec probabilities under a stream of
// observations with O(1) updates; see Fuser.Incremental.
type Incremental = core.Incremental

// Incremental derives an online fuser from this Fuser's trained quality
// model. Only the supervised methods carry a quality model; penalizeSilence
// selects global-scope semantics (every silent source counts against a
// triple). The returned Incremental is independent of the Fuser's dataset:
// feed it any observation stream.
func (f *Fuser) Incremental(penalizeSilence bool) (*Incremental, error) {
	if f.est == nil {
		return nil, fmt.Errorf("corrfuse: method %s has no trained quality model; use PrecRec or a PrecRecCorr variant", f.MethodName())
	}
	return core.NewIncremental(f.est, f.d.NumSources(), penalizeSilence)
}

// ResolveSingleValued enforces single-truth semantics on a fusion result:
// for each predicate in singleValued, only the most probable value per
// (subject, predicate) survives in both Accepted and All (§7 future work —
// "a person only has a single birth date"). It returns a new Result.
func (r *Result) ResolveSingleValued(singleValued []string) *Result {
	preds := make(map[string]bool, len(singleValued))
	for _, p := range singleValued {
		preds[p] = true
	}
	convert := func(in []ScoredTriple) []resolve.Scored {
		out := make([]resolve.Scored, len(in))
		for i, st := range in {
			out[i] = resolve.Scored{ID: st.ID, Triple: st.Triple, Probability: st.Probability}
		}
		return out
	}
	back := func(in []resolve.Scored) []ScoredTriple {
		out := make([]ScoredTriple, len(in))
		for i, s := range in {
			out[i] = ScoredTriple{ID: s.ID, Triple: s.Triple, Probability: s.Probability}
		}
		return out
	}
	// Arbitrate on the full ranking so suppressed values disappear from
	// Accepted even when several values of one key clear the threshold.
	kept := resolve.SingleValued(convert(r.All), preds)
	keptSet := make(map[TripleID]bool, len(kept))
	for _, s := range kept {
		keptSet[s.ID] = true
	}
	out := &Result{All: back(kept)}
	for _, st := range r.Accepted {
		if keptSet[st.ID] {
			out.Accepted = append(out.Accepted, st)
		}
	}
	return out
}
