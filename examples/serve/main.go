// Serve example: a client for the corrfused fusion service (cmd/fused).
// It writes a small training store, tells you how to start the server, then
// drives the API end to end: ingest claims from two copying extractors and
// an unreliable one, read the instantly-fresh incremental probabilities,
// force a batch re-fusion, and observe the correlation-corrected values.
//
// Run in one terminal:
//
//	go run ./examples/serve -write-store /tmp/demo.jsonl
//	go run ./cmd/fused -store /tmp/demo.jsonl -addr :8080 -smoothing 0.1 -wal /tmp/demo-wal
//
// (-wal makes every acknowledged observe durable before the ack — kill the
// server however you like and restart it: nothing acknowledged is lost)
// and in another:
//
//	go run ./examples/serve -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"

	"corrfuse/internal/store"
	"corrfuse/internal/triple"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of a running fused server")
	writeStore := flag.String("write-store", "", "write the demo training store to this path and exit")
	flag.Parse()

	if *writeStore != "" {
		if err := writeDemoStore(*writeStore); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote demo store to %s\n", *writeStore)
		fmt.Printf("start the service with:\n\tgo run ./cmd/fused -store %s -addr :8080 -smoothing 0.1 -wal %s-wal\n", *writeStore, *writeStore)
		return
	}
	if err := drive(*addr); err != nil {
		log.Fatal(err)
	}
}

// writeDemoStore builds the training data: copy1 and copy2 are perfect
// copies, indie is independent and unreliable.
func writeDemoStore(path string) error {
	st := store.New()
	tr := func(s, o string) triple.Triple {
		return triple.Triple{Subject: s, Predicate: "capital", Object: o}
	}
	for i, city := range []string{"Paris", "Rome", "Berlin", "Madrid", "Lisbon", "Vienna", "Dublin", "Oslo"} {
		srcs := []string{"copy1", "copy2"}
		if i%3 == 0 {
			srcs = append(srcs, "indie")
		}
		st.Put(store.Entry{Triple: tr(fmt.Sprintf("country%d", i), city), Sources: srcs, Label: "true"})
	}
	for i, city := range []string{"Gotham", "Atlantis", "Springfield"} {
		st.Put(store.Entry{Triple: tr(fmt.Sprintf("fake%d", i), city), Sources: []string{"indie"}, Label: "false"})
	}
	// A wrong triple both copiers repeat: trains their joint false
	// positive rate, which is what the batch model corrects with.
	st.Put(store.Entry{Triple: tr("fake3", "Shangri-La"), Sources: []string{"copy1", "copy2"}, Label: "false"})
	return st.Save(path)
}

func drive(base string) error {
	// 1. Ingest: the same new claim from both copying sources.
	fmt.Println("== ingest {Elbonia, capital, Bugtown} from copy1, then copy2 ==")
	for _, src := range []string{"copy1", "copy2"} {
		out, err := call("POST", base+"/v1/observe", map[string]string{
			"source": src, "subject": "Elbonia", "predicate": "capital", "object": "Bugtown",
		})
		if err != nil {
			return err
		}
		fmt.Printf("after %s: %s\n", src, out)
	}

	// 2. Query: answered from the incremental model (live=true).
	fmt.Println("\n== query the triple (served live between refreshes) ==")
	out, err := call("GET", base+"/v1/triple?subject=Elbonia&predicate=capital&object=Bugtown", nil)
	if err != nil {
		return err
	}
	fmt.Println(out)

	// 3. Batch score a few triples in one request.
	fmt.Println("\n== batch score ==")
	out, err = call("POST", base+"/v1/score", map[string]any{
		"triples": []map[string]string{
			{"subject": "Elbonia", "predicate": "capital", "object": "Bugtown"},
			{"subject": "country0", "predicate": "capital", "object": "Paris"},
		},
	})
	if err != nil {
		return err
	}
	fmt.Println(out)

	// 4. Re-fuse: the correlation-aware batch model discounts the copy.
	fmt.Println("\n== force a batch re-fusion ==")
	out, err = call("POST", base+"/v1/refuse", map[string]string{})
	if err != nil {
		return err
	}
	fmt.Println(out)

	fmt.Println("\n== query again (batch-corrected, live=false) ==")
	out, err = call("GET", base+"/v1/triple?subject=Elbonia&predicate=capital&object=Bugtown", nil)
	if err != nil {
		return err
	}
	fmt.Println(out)

	// 5. Subject listing: served from the immutable per-snapshot index —
	// pre-ranked by probability at re-fusion time, with matching snapshot
	// and index versions proving the response came from one generation.
	fmt.Println("\n== fused results about Elbonia (pre-ranked, snapshot-consistent) ==")
	out, err = call("GET", base+"/v1/subject/Elbonia", nil)
	if err != nil {
		return err
	}
	fmt.Println(out)

	// 6. Everything the service knows about a source, and its health.
	fmt.Println("\n== entries provided by indie ==")
	out, err = call("GET", base+"/v1/source/indie", nil)
	if err != nil {
		return err
	}
	fmt.Println(out)
	out, err = call("GET", base+"/healthz", nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nhealth: %s\n", out)
	return nil
}

func call(method, url string, body any) (string, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return "", err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s %s: %d: %s", method, url, resp.StatusCode, raw)
	}
	return string(bytes.TrimSpace(raw)), nil
}
