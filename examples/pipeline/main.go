// Full-pipeline example: raw confidence-scored extractions from messy,
// unnormalized sources are canonicalized (schema mapping + reference
// reconciliation), thresholded into a dataset, fused with the
// correlation-aware model, post-processed with single-truth resolution for
// the birth-date attribute, and finally served incrementally as new
// observations stream in.
package main

import (
	"fmt"
	"log"

	"corrfuse"
)

func main() {
	// 1. Raw extractions: same facts, different surface forms and
	//    confidences, from three extraction systems.
	raw := []corrfuse.ConfidenceObservation{
		{Source: "wiki-text", Triple: tr("Barack Obama", "occupation", "US President"), Confidence: 0.95},
		{Source: "wiki-text", Triple: tr("Barack Obama", "born", "1961-08-04"), Confidence: 0.90},
		{Source: "wiki-text", Triple: tr("Barack  Obama", "born", "1936"), Confidence: 0.40}, // Obama Sr. confusion
		{Source: "infobox", Triple: tr("B. Obama", "Occupation", "president."), Confidence: 0.99},
		{Source: "infobox", Triple: tr("B. Obama", "Born", "1961-08-04"), Confidence: 0.97},
		{Source: "infobox", Triple: tr("B. Obama", "Spouse", "Michelle Obama"), Confidence: 0.98},
		{Source: "news", Triple: tr("BARACK OBAMA", "occupation", "lawyer"), Confidence: 0.80},
		{Source: "news", Triple: tr("BARACK OBAMA", "born", "1961-08-04"), Confidence: 0.70},
		{Source: "news", Triple: tr("BARACK OBAMA", "born", "1962-08-04"), Confidence: 0.65}, // typo'd year
	}

	// 2. Normalize: one schema, one entity name.
	// Alias targets should themselves be canonical strings — they are
	// substituted verbatim.
	n := corrfuse.NewNormalizer()
	n.MapPredicate("occupation", "profession")
	n.MapEntity("Barack Obama", "obama")
	n.MapEntity("B. Obama", "obama")
	n.MapValue("US President", "president")
	for i := range raw {
		raw[i].Triple = n.Apply(raw[i].Triple)
	}

	// 3. Threshold confidences into a dataset.
	d, err := corrfuse.Materialize(raw, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after normalization + thresholding: %d sources, %d distinct triples\n",
		d.NumSources(), d.NumTriples())

	// 4. Label a training subset (in practice crowdsourced; here by hand).
	d.SetLabel(n.Apply(tr("Barack Obama", "profession", "president")), corrfuse.True)
	d.SetLabel(n.Apply(tr("Barack Obama", "profession", "lawyer")), corrfuse.True)
	d.SetLabel(n.Apply(tr("Barack Obama", "born", "1961-08-04")), corrfuse.True)
	d.SetLabel(n.Apply(tr("Barack Obama", "born", "1962-08-04")), corrfuse.False)
	d.SetLabel(n.Apply(tr("Barack Obama", "spouse", "Michelle Obama")), corrfuse.True)

	// 5. Fuse with the correlation-aware model.
	f, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRecCorr, Alpha: 0.7, Smoothing: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := f.Fuse()
	if err != nil {
		log.Fatal(err)
	}

	// 6. Single-truth arbitration: a person has one birth date.
	resolved := res.ResolveSingleValued([]string{"born"})
	fmt.Println("\nfused knowledge base (born is single-valued):")
	for _, st := range resolved.All {
		fmt.Printf("  %-45s Pr=%.3f\n", st.Triple, st.Probability)
	}

	// 7. Online serving: new claims arrive; probabilities update in O(1).
	inc, err := f.Incremental(false)
	if err != nil {
		log.Fatal(err)
	}
	fresh := n.Apply(tr("Barack Obama", "profession", "community organizer"))
	src, _ := d.SourceID("news")
	p, err := inc.Observe(src, fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming update: %v from one source → Pr=%.3f\n", fresh, p)
	src2, _ := d.SourceID("wiki-text")
	p, _ = inc.Observe(src2, fresh)
	fmt.Printf("                  corroborated by a second source → Pr=%.3f\n", p)
}

func tr(s, p, o string) corrfuse.Triple {
	return corrfuse.Triple{Subject: s, Predicate: p, Object: o}
}
