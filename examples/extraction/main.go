// Extraction pipeline example: simulate a web corpus, run five extraction
// systems over it (three of which share rules, one of which reads only
// structured page regions), fuse their outputs with every method, and report
// precision/recall/F1 against the ground truth.
//
// This is the paper's motivating scenario end to end: extraction noise,
// positive correlation from shared extraction rules, and negative
// correlation from complementary pattern support.
package main

import (
	"fmt"
	"log"

	"corrfuse"
	"corrfuse/internal/extract"
)

func main() {
	corpus, err := extract.NewCorpus(extract.CorpusConfig{
		NumPages:             800,
		FactsPerPage:         5,
		MultiPatternFraction: 0.35,
		Seed:                 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d pages, %d stated facts\n", len(corpus.Pages), corpus.NumFacts())

	d, err := extract.Run(corpus, extract.StandardExtractors(), 2024)
	if err != nil {
		log.Fatal(err)
	}
	nt, nf := d.CountLabels()
	fmt.Printf("extracted: %d distinct triples (%d true, %d false)\n\n", d.NumTriples(), nt, nf)

	alpha := float64(nt) / float64(nt+nf)
	methods := []struct {
		name string
		opts corrfuse.Options
	}{
		{"Union-50 (majority)", corrfuse.Options{Method: corrfuse.UnionK, UnionK: 50}},
		{"3-Estimates", corrfuse.Options{Method: corrfuse.ThreeEstimates}},
		{"LTM", corrfuse.Options{Method: corrfuse.LTM}},
		{"PrecRec", corrfuse.Options{Method: corrfuse.PrecRec, Alpha: alpha}},
		{"PrecRecCorr", corrfuse.Options{Method: corrfuse.PrecRecCorr, Alpha: alpha}},
	}

	fmt.Printf("%-22s %9s %9s %9s\n", "Method", "Precision", "Recall", "F1")
	for _, m := range methods {
		fuser, err := corrfuse.New(d, m.opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fuser.Fuse()
		if err != nil {
			log.Fatal(err)
		}
		var tp, fp, fn int
		accepted := make(map[corrfuse.TripleID]bool, len(res.Accepted))
		for _, st := range res.Accepted {
			accepted[st.ID] = true
		}
		for _, st := range res.All {
			isTrue := d.Label(st.ID) == corrfuse.True
			switch {
			case accepted[st.ID] && isTrue:
				tp++
			case accepted[st.ID] && !isTrue:
				fp++
			case isTrue:
				fn++
			}
		}
		prec := safeDiv(tp, tp+fp)
		rec := safeDiv(tp, tp+fn)
		f1 := 0.0
		if prec+rec > 0 {
			f1 = 2 * prec * rec / (prec + rec)
		}
		fmt.Printf("%-22s %9.3f %9.3f %9.3f\n", m.name, prec, rec, f1)
	}
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
