// Correlated-source scenarios: demonstrates the four scenarios of
// Example 4.1 on synthetic data — copying, overlap on true triples, overlap
// on false triples, and complementary sources — and shows how the
// correlation-aware model reacts to each where the independent model cannot.
package main

import (
	"fmt"
	"log"

	"corrfuse"
	"corrfuse/internal/dataset"
)

func main() {
	scenarios := []struct {
		name  string
		intro string
		build func() (*corrfuse.Dataset, error)
	}{
		{
			name:  "Scenario 1/3 — copying (shared true AND false data)",
			intro: "four of five sources copy each other; common mistakes look like consensus",
			build: func() (*corrfuse.Dataset, error) {
				spec := dataset.UniformSpec(5, 1000, 0.5, 0.65, 0.45, 11)
				spec.Groups = []dataset.GroupSpec{
					{Members: []int{0, 1, 2, 3}, OnTrue: true, Strength: 0.85},
					{Members: []int{0, 1, 2, 3}, OnTrue: false, Strength: 0.85},
				}
				return dataset.Generate(spec)
			},
		},
		{
			name:  "Scenario 2 — overlap on true triples only",
			intro: "sources share extraction patterns (same truths) but make independent mistakes",
			build: func() (*corrfuse.Dataset, error) {
				return dataset.SyntheticCorrelated(22, false)
			},
		},
		{
			name:  "Scenario 4 — complementary sources",
			intro: "each source covers its own slice of the domain; silence is not evidence",
			build: func() (*corrfuse.Dataset, error) {
				return dataset.SyntheticCorrelated(33, true)
			},
		},
	}

	for _, sc := range scenarios {
		d, err := sc.build()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  (%s)\n", sc.name, sc.intro)
		for _, m := range []corrfuse.Method{corrfuse.PrecRec, corrfuse.PrecRecCorr} {
			prec, rec, f1 := evaluate(d, m)
			fmt.Printf("  %-14s precision=%.3f recall=%.3f F1=%.3f\n",
				m.String()+":", prec, rec, f1)
		}
		fmt.Println()
	}
}

func evaluate(d *corrfuse.Dataset, m corrfuse.Method) (prec, rec, f1 float64) {
	nt, nf := d.CountLabels()
	fuser, err := corrfuse.New(d, corrfuse.Options{
		Method: m,
		Alpha:  float64(nt) / float64(nt+nf),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := fuser.Fuse()
	if err != nil {
		log.Fatal(err)
	}
	accepted := make(map[corrfuse.TripleID]bool, len(res.Accepted))
	for _, st := range res.Accepted {
		accepted[st.ID] = true
	}
	var tp, fp, fn int
	for _, st := range res.All {
		isTrue := d.Label(st.ID) == corrfuse.True
		switch {
		case accepted[st.ID] && isTrue:
			tp++
		case accepted[st.ID] && !isTrue:
			fp++
		case isTrue:
			fn++
		}
	}
	if tp+fp > 0 {
		prec = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		rec = float64(tp) / float64(tp+fn)
	}
	if prec+rec > 0 {
		f1 = 2 * prec * rec / (prec + rec)
	}
	return
}
