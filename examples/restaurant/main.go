// Restaurant example: fuse location data about restaurants from seven
// aggregator sources with a proper train/test split — the realistic workflow
// in which a small labeled sample (e.g. from Mechanical Turk, as in the
// paper's RESTAURANT dataset) trains the quality model and fusion is
// evaluated on held-out triples.
package main

import (
	"fmt"
	"log"

	"corrfuse"
	"corrfuse/internal/dataset"
	"corrfuse/internal/stat"
)

func main() {
	// A larger restaurant-style world (4× the paper's gold standard) so
	// the held-out estimates are stable.
	d, err := dataset.SimulatedRestaurant(7, 4)
	if err != nil {
		log.Fatal(err)
	}
	nt, nf := d.CountLabels()
	fmt.Printf("dataset: %d sources, %d triples (%d true, %d false)\n",
		d.NumSources(), d.NumTriples(), nt, nf)

	// Split the labeled triples 50/50 into train and test.
	labeled := d.Labeled()
	rng := stat.NewRNG(99)
	rng.Shuffle(len(labeled), func(i, j int) { labeled[i], labeled[j] = labeled[j], labeled[i] })
	train := labeled[:len(labeled)/2]
	test := labeled[len(labeled)/2:]
	fmt.Printf("training on %d labeled triples, evaluating on %d held-out\n\n", len(train), len(test))

	for _, method := range []corrfuse.Method{corrfuse.PrecRec, corrfuse.PrecRecCorrElastic, corrfuse.PrecRecCorr} {
		fuser, err := corrfuse.New(d, corrfuse.Options{
			Method: method,
			Train:  train,
			Alpha:  float64(nt) / float64(nt+nf),
		})
		if err != nil {
			log.Fatal(err)
		}
		var tp, fp, fn int
		for _, id := range test {
			if len(d.Providers(id)) == 0 {
				continue
			}
			accepted := fuser.ProbabilityByID(id) > 0.5
			isTrue := d.Label(id) == corrfuse.True
			switch {
			case accepted && isTrue:
				tp++
			case accepted && !isTrue:
				fp++
			case isTrue:
				fn++
			}
		}
		prec := ratio(tp, tp+fp)
		rec := ratio(tp, tp+fn)
		fmt.Printf("%-22s held-out precision=%.3f recall=%.3f F1=%.3f\n",
			fuser.MethodName(), prec, rec, 2*prec*rec/(prec+rec))
	}

	// Point queries through the public API.
	fuser, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRecCorr, Train: train})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample point queries:")
	for i, id := range test[:3] {
		t := d.Triple(id)
		p, _ := fuser.Probability(t)
		fmt.Printf("  %d. %v → Pr(true)=%.3f (gold: %v)\n", i+1, t, p, d.Label(id))
	}
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
