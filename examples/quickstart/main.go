// Quickstart: fuse the paper's running example (Figure 1) with the public
// API. Five extraction systems provide conflicting knowledge triples about
// Barack Obama; corrfuse decides which triples are true, first assuming
// independent sources and then accounting for their correlations.
package main

import (
	"fmt"
	"log"

	"corrfuse"
)

func main() {
	d := corrfuse.NewDataset()

	// Register the five extractors.
	s := make(map[string]corrfuse.SourceID)
	for _, name := range []string{"S1", "S2", "S3", "S4", "S5"} {
		s[name] = d.AddSource(name)
	}

	// The observation matrix of Figure 1a: which extractor produced which
	// triple, and the gold labels used for training.
	type row struct {
		t     corrfuse.Triple
		label corrfuse.Label
		srcs  []string
	}
	rows := []row{
		{tr("profession", "president"), corrfuse.True, []string{"S1", "S2", "S4", "S5"}},
		{tr("died", "1982"), corrfuse.False, []string{"S1", "S2"}},
		{tr("profession", "lawyer"), corrfuse.True, []string{"S3"}},
		{tr("religion", "Christian"), corrfuse.True, []string{"S2", "S3", "S4", "S5"}},
		{tr("age", "50"), corrfuse.False, []string{"S2", "S3"}},
		{tr("support", "White Sox"), corrfuse.True, []string{"S1", "S4", "S5"}},
		{tr("spouse", "Michelle"), corrfuse.True, []string{"S1", "S2", "S3"}},
		{tr("administered by", "John G. Roberts"), corrfuse.False, []string{"S1", "S2", "S4", "S5"}},
		{tr("surgical operation", "05/01/2011"), corrfuse.False, []string{"S1", "S2", "S4", "S5"}},
		{tr("profession", "community organizer"), corrfuse.True, []string{"S1", "S3", "S4", "S5"}},
	}
	for _, r := range rows {
		for _, name := range r.srcs {
			d.Observe(s[name], r.t)
		}
		d.SetLabel(r.t, r.label)
	}

	for _, method := range []corrfuse.Method{corrfuse.PrecRec, corrfuse.PrecRecCorr} {
		fuser, err := corrfuse.New(d, corrfuse.Options{Method: method})
		if err != nil {
			log.Fatal(err)
		}
		res, err := fuser.Fuse()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", fuser.MethodName())
		for _, st := range res.All {
			verdict := "rejected"
			if st.Probability > 0.5 {
				verdict = "ACCEPTED"
			}
			fmt.Printf("  %-55s Pr=%.3f %s\n", st.Triple, st.Probability, verdict)
		}
		fmt.Println()
	}

	fmt.Println("Note how the correlation-aware model rejects the common mistakes")
	fmt.Println("of the correlated extractors S1/S4/S5 (the 'administered by' and")
	fmt.Println("'surgical operation' triples) that fool the independent model.")
}

func tr(pred, obj string) corrfuse.Triple {
	return corrfuse.Triple{Subject: "Obama", Predicate: pred, Object: obj}
}
