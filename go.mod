module corrfuse

go 1.24
