// Differential tests for ShardedFuser.RebuildPartial: retraining only the
// dirty shards of a subject-hash partition must reproduce a full sharded
// rebuild exactly (≤ 1e-9) whenever the global quality fallback is unused
// or unchanged, adopt every clean shard's Fuser verbatim, and degrade
// safely when the dirty set understates the change.
package corrfuse_test

import (
	"fmt"
	"math"
	"testing"

	"corrfuse"
	"corrfuse/internal/shard"
)

// shardSubjects returns, per shard of an nShards-way partition, the subjects
// present in d (insertion order).
func shardSubjects(d *corrfuse.Dataset) [][]string {
	out := make([][]string, nShards)
	seen := map[string]bool{}
	for i := 0; i < d.NumTriples(); i++ {
		sub := d.Triple(corrfuse.TripleID(i)).Subject
		if seen[sub] {
			continue
		}
		seen[sub] = true
		g := shard.Of(sub, nShards)
		out[g] = append(out[g], sub)
	}
	return out
}

// addUnlabeledClaims clones d and adds a fresh unlabeled triple per dirty
// shard, observed by that shard group's sources on a subject they already
// cover — the change-confined, label-preserving mutation partial rebuilds
// are exact under.
func addUnlabeledClaims(t *testing.T, d *corrfuse.Dataset, dirty []int) *corrfuse.Dataset {
	t.Helper()
	d2 := d.Clone()
	subs := shardSubjects(d)
	for _, g := range dirty {
		if len(subs[g]) == 0 {
			t.Fatalf("no subject routed to shard %d", g)
		}
		sub := subs[g][0]
		a, _ := d2.SourceID(fmt.Sprintf("copierA-%d", g))
		b, _ := d2.SourceID(fmt.Sprintf("copierB-%d", g))
		tt := corrfuse.Triple{Subject: sub, Predicate: "p-new", Object: "v"}
		d2.Observe(a, tt)
		d2.Observe(b, tt)
	}
	return d2
}

func scoreDiff(t *testing.T, want, got corrfuse.Model, ids []corrfuse.TripleID, tol float64, label string) {
	t.Helper()
	wp := want.Score(ids)
	gp := got.Score(ids)
	for i, id := range ids {
		if diff := math.Abs(wp[i] - gp[i]); diff > tol {
			t.Errorf("%s: %v: full %.12f, partial %.12f (diff %.3g)",
				label, want.Dataset().Triple(id), wp[i], gp[i], diff)
		}
	}
}

func checkReuse(t *testing.T, sf *corrfuse.ShardedFuser, dirty []int) {
	t.Helper()
	dirtySet := map[int]bool{}
	for _, g := range dirty {
		dirtySet[g] = true
	}
	for _, st := range sf.ShardStats() {
		if dirtySet[st.Shard] && st.Reused {
			t.Errorf("dirty shard %d reported reused", st.Shard)
		}
		if !dirtySet[st.Shard] && !st.Reused {
			t.Errorf("clean shard %d was retrained", st.Shard)
		}
	}
}

// TestRebuildPartialMatchesFullRebuild is the acceptance differential: with
// labels (and labeled provenance) unchanged, RebuildPartial over k dirty
// shards equals a full sharded rebuild to 1e-9 — for subject scope (where
// the fallback is never consulted by scoring) and for global scope (where
// the unchanged fallback is reused verbatim), across the supervised methods
// and an unsupervised baseline.
func TestRebuildPartialMatchesFullRebuild(t *testing.T) {
	base := subjectPartitionedDataset(t)
	cases := []struct {
		name    string
		method  corrfuse.Method
		subject bool
		dirty   []int
	}{
		{"PrecRec/subject/1of4", corrfuse.PrecRec, true, []int{1}},
		{"PrecRecCorr/subject/2of4", corrfuse.PrecRecCorr, true, []int{0, 2}},
		{"PrecRecCorr/global/1of4", corrfuse.PrecRecCorr, false, []int{3}},
		{"PrecRecCorrElastic/global/2of4", corrfuse.PrecRecCorrElastic, false, []int{1, 2}},
		{"ThreeEstimates/global/1of4", corrfuse.ThreeEstimates, false, []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := corrfuse.Options{
				Method:         tc.method,
				Smoothing:      0.1,
				Shards:         nShards,
				RebuildWorkers: nShards,
			}
			if tc.subject {
				opts.Scope = corrfuse.NewScopeSubject(base)
			}
			prev, err := corrfuse.NewSharded(base, opts)
			if err != nil {
				t.Fatal(err)
			}
			d2 := addUnlabeledClaims(t, base, tc.dirty)
			partial, err := prev.RebuildPartial(d2, tc.dirty)
			if err != nil {
				t.Fatal(err)
			}
			full, err := prev.Rebuild(d2)
			if err != nil {
				t.Fatal(err)
			}
			checkReuse(t, partial, tc.dirty)
			scoreDiff(t, full, partial, providedIDs(d2), 1e-9, tc.name)
		})
	}
}

// TestRebuildPartialLabelChangeRederivesFallback: when a dirty shard's
// labeled slice changes, the global fallback estimator is re-derived, so the
// retrained shards still match a full rebuild exactly; clean shards keep
// their adopted models (the documented caveat) and stay within the
// cross-shard divergence bound.
func TestRebuildPartialLabelChangeRederivesFallback(t *testing.T) {
	base := subjectPartitionedDataset(t)
	opts := corrfuse.Options{
		Method:         corrfuse.PrecRecCorr,
		Smoothing:      0.1,
		Shards:         nShards,
		RebuildWorkers: nShards,
	}
	prev, err := corrfuse.NewSharded(base, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Shard 1 gains a freshly labeled false triple from its copier pair:
	// the global estimator's precision counts move, so a stale fallback
	// would be visible in shard 1's own scores under global scope.
	const g = 1
	d2 := base.Clone()
	sub := shardSubjects(base)[g][0]
	a, _ := d2.SourceID(fmt.Sprintf("copierA-%d", g))
	b, _ := d2.SourceID(fmt.Sprintf("copierB-%d", g))
	tt := corrfuse.Triple{Subject: sub, Predicate: "p-mislabeled", Object: "v"}
	d2.Observe(a, tt)
	d2.Observe(b, tt)
	d2.SetLabel(tt, corrfuse.False)

	partial, err := prev.RebuildPartial(d2, []int{g})
	if err != nil {
		t.Fatal(err)
	}
	full, err := prev.Rebuild(d2)
	if err != nil {
		t.Fatal(err)
	}
	checkReuse(t, partial, []int{g})

	var dirtyIDs, cleanIDs []corrfuse.TripleID
	for _, id := range providedIDs(d2) {
		if shard.Of(d2.Triple(id).Subject, nShards) == g {
			dirtyIDs = append(dirtyIDs, id)
		} else {
			cleanIDs = append(cleanIDs, id)
		}
	}
	// Retrained shard: exact, proving the fallback was re-derived.
	scoreDiff(t, full, partial, dirtyIDs, 1e-9, "dirty shard")
	// Adopted shards: built against the pre-change fallback; divergence
	// must stay within the cross-shard bound the sharding contract allows.
	scoreDiff(t, full, partial, cleanIDs, 0.15, "clean shards")
}

// TestRebuildPartialNewSourceRederivesFallback: under the global partition
// the initial build needs the fallback estimator (each shard misses the
// other shards' sources' labels). When a brand-new source then joins with
// only unlabeled claims, no labeled slice changes — but the old estimator's
// tables are indexed by the old source table, so reusing it would index out
// of range. RebuildPartial must re-derive it and match a full rebuild.
func TestRebuildPartialNewSourceRederivesFallback(t *testing.T) {
	base := subjectPartitionedDataset(t)
	opts := corrfuse.Options{
		Method:         corrfuse.PrecRecCorr,
		Smoothing:      0.1,
		Shards:         nShards,
		RebuildWorkers: nShards,
	}
	prev, err := corrfuse.NewSharded(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	d2 := base.Clone()
	s := d2.AddSource("latecomer")
	d2.Observe(s, corrfuse.Triple{Subject: shardSubjects(base)[0][0], Predicate: "p-late", Object: "v"})

	partial, err := prev.RebuildPartial(d2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// The source-table change disables adoption for every shard.
	for _, st := range partial.ShardStats() {
		if st.Reused {
			t.Errorf("shard %d adopted across a source-table change", st.Shard)
		}
	}
	full, err := prev.Rebuild(d2)
	if err != nil {
		t.Fatal(err)
	}
	scoreDiff(t, full, partial, providedIDs(d2), 1e-9, "new source")
}

// TestRebuildPartialDegradesOnUnderstatedDirtySet: a shard changed but not
// listed as dirty must be retrained anyway (the partition verifies the
// claim), so the result still equals a full rebuild.
func TestRebuildPartialDegradesOnUnderstatedDirtySet(t *testing.T) {
	base := subjectPartitionedDataset(t)
	opts := corrfuse.Options{
		Method:         corrfuse.PrecRecCorr,
		Smoothing:      0.1,
		Shards:         nShards,
		RebuildWorkers: nShards,
	}
	prev, err := corrfuse.NewSharded(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	d2 := addUnlabeledClaims(t, base, []int{0, 2})
	// Claim only shard 0 is dirty; shard 2's change must be caught.
	partial, err := prev.RebuildPartial(d2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range partial.ShardStats() {
		if st.Shard == 2 && st.Reused {
			t.Fatal("changed shard 2 adopted on an understated dirty set")
		}
	}
	full, err := prev.Rebuild(d2)
	if err != nil {
		t.Fatal(err)
	}
	scoreDiff(t, full, partial, providedIDs(d2), 1e-9, "understated")
}

// TestRebuildPartialEdgeCases: an empty dirty set over unchanged data adopts
// everything; an all-dirty set equals a full rebuild with nothing adopted;
// out-of-range shard indexes error.
func TestRebuildPartialEdgeCases(t *testing.T) {
	base := subjectPartitionedDataset(t)
	opts := corrfuse.Options{
		Method:         corrfuse.PrecRecCorr,
		Smoothing:      0.1,
		Shards:         nShards,
		RebuildWorkers: nShards,
	}
	prev, err := corrfuse.NewSharded(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	same, err := prev.RebuildPartial(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkReuse(t, same, nil)
	scoreDiff(t, prev, same, providedIDs(base), 0, "no-op")

	d2 := addUnlabeledClaims(t, base, []int{0, 1, 2, 3})
	all, err := prev.RebuildPartial(d2, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	checkReuse(t, all, []int{0, 1, 2, 3})
	full, err := prev.Rebuild(d2)
	if err != nil {
		t.Fatal(err)
	}
	scoreDiff(t, full, all, providedIDs(d2), 1e-9, "all-dirty")

	if _, err := prev.RebuildPartial(d2, []int{nShards}); err == nil {
		t.Error("out-of-range shard index accepted")
	}
	if _, err := prev.RebuildPartial(nil, nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

// TestRebuildPartialTrainRestrictedDelegatesToFull: an engine built under an
// Options.Train restriction bakes it into every shard model, so a partial
// rebuild must not adopt any of them — it delegates to the full rebuild,
// which clears Train.
func TestRebuildPartialTrainRestrictedDelegatesToFull(t *testing.T) {
	base := subjectPartitionedDataset(t)
	labeled := base.Labeled()
	opts := corrfuse.Options{
		Method:         corrfuse.PrecRecCorr,
		Smoothing:      0.1,
		Shards:         nShards,
		RebuildWorkers: nShards,
		Train:          labeled[:len(labeled)/2],
	}
	prev, err := corrfuse.NewSharded(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	d2 := addUnlabeledClaims(t, base, []int{1})
	partial, err := prev.RebuildPartial(d2, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	checkReuse(t, partial, []int{0, 1, 2, 3}) // nothing adopted
	full, err := prev.Rebuild(d2)
	if err != nil {
		t.Fatal(err)
	}
	scoreDiff(t, full, partial, providedIDs(d2), 1e-9, "train-restricted")
}
