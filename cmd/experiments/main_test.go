package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCheapExperiments(t *testing.T) {
	var buf bytes.Buffer
	for _, exp := range []string{"fig1b", "fig1c", "fig3", "fig4b", "copy"} {
		if err := run(&buf, exp, 1, 1, 2); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Figure 1b", "Union-25", "C+", "PrecRecCorr", "CopyDiscount"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", 1, 1, 2); err == nil {
		t.Error("unknown experiment should fail")
	}
}
