// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the same rows/series the paper
// reports (on the simulated substitutes of the proprietary datasets — see
// DESIGN.md).
//
// Usage:
//
//	experiments -exp fig1b|fig1c|fig3|fig4a|fig4b|fig4c|fig5a|fig5b|fig6a|fig6b|fig6c|fig7|copy|ablation|crowd|all
//	            [-seed N] [-reps N] [-levels N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"corrfuse/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1b, fig1c, fig3, fig4a, fig4b, fig4c, fig5a, fig5b, fig6a, fig6b, fig6c, fig7, copy, ablation, crowd, all)")
	seed := flag.Int64("seed", 1, "random seed for data simulation")
	reps := flag.Int("reps", 0, "repetitions for the synthetic sweeps (0 = paper default)")
	levels := flag.Int("levels", 5, "maximum elastic level for fig5a")
	curves := flag.String("curves", "", "directory to export PR/ROC curve TSVs for fig4 experiments")
	flag.Parse()

	if *curves != "" {
		if err := exportCurves(*curves, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if err := run(os.Stdout, *exp, *seed, *reps, *levels); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, seed int64, reps, levels int) error {
	runners := map[string]func() error{
		"fig1b": func() error { return experiments.PrintFig1b(w) },
		"fig1c": func() error { return experiments.PrintFig1c(w) },
		"fig3":  func() error { return experiments.PrintFig3(w) },
		"fig4a": func() error { return experiments.PrintFig4(w, "reverb", seed) },
		"fig4b": func() error { return experiments.PrintFig4(w, "restaurant", seed) },
		"fig4c": func() error { return experiments.PrintFig4(w, "book", seed) },
		"fig5a": func() error { return experiments.PrintFig5a(w, seed, levels) },
		"fig5b": func() error { return experiments.PrintFig5b(w, seed) },
		"fig6a": func() error {
			return sweep(w, experiments.Fig6a(), "Figure 6a — low precision sources (p=0.1), 25% true", reps)
		},
		"fig6b": func() error {
			return sweep(w, experiments.Fig6b(), "Figure 6b — high precision sources (p=0.75), 50% true", reps)
		},
		"fig6c": func() error {
			return sweep(w, experiments.Fig6c(), "Figure 6c — low recall sources (r=0.25), 25% true", reps)
		},
		"fig7":     func() error { return experiments.PrintFig7(w, seed, reps) },
		"copy":     func() error { return experiments.PrintCopyComparison(w, seed) },
		"ablation": func() error { return experiments.PrintAblation(w, seed) },
		"crowd":    func() error { return experiments.PrintCrowdRobustness(w, seed) },
	}
	if exp == "all" {
		order := []string{"fig1b", "fig1c", "fig3", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig7", "copy", "ablation", "crowd"}
		for _, name := range order {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return r()
}

func sweep(w io.Writer, cfg experiments.SweepConfig, title string, reps int) error {
	if reps > 0 {
		cfg.Reps = reps
	}
	points, err := experiments.RunSweep(cfg)
	if err != nil {
		return err
	}
	experiments.PrintSweep(w, title, points)
	return nil
}

// exportCurves writes the Figure 4 PR/ROC series for every dataset as TSV.
func exportCurves(dir string, seed int64) error {
	for _, name := range []string{"reverb", "restaurant", "book"} {
		evals, err := experiments.Fig4(name, seed)
		if err != nil {
			return err
		}
		if err := experiments.WriteCurves(dir, name, evals); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: curve TSVs written to %s\n", dir)
	return nil
}
