package main

import "testing"

func TestBuildAllKinds(t *testing.T) {
	for _, kind := range []string{"obama", "reverb", "restaurant", "book", "uniform", "correlated", "anti", "extraction"} {
		d, err := build(kind, 1, 4, 200, 0.5, 0.7, 0.5, 50)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if d.NumTriples() == 0 || d.NumSources() == 0 {
			t.Errorf("%s: empty dataset", kind)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := build("martian", 1, 4, 200, 0.5, 0.7, 0.5, 50); err == nil {
		t.Error("unknown kind should fail")
	}
}
