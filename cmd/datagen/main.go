// Command datagen emits synthetic and simulated datasets as JSONL, for use
// with cmd/fuse or external tooling.
//
// Usage:
//
//	datagen -kind obama|reverb|restaurant|book|uniform|correlated|anti|extraction
//	        [-seed N] [-out data.jsonl]
//	        [-sources N -triples N -true-frac F -precision F -recall F]   (uniform)
//	        [-pages N]                                                    (extraction)
package main

import (
	"flag"
	"fmt"
	"os"

	"corrfuse/internal/dataset"
	"corrfuse/internal/extract"
	"corrfuse/internal/triple"
)

func main() {
	kind := flag.String("kind", "uniform", "dataset kind: obama, reverb, restaurant, book, uniform, correlated, anti, extraction")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output path (default stdout)")
	sources := flag.Int("sources", 5, "number of sources (uniform)")
	triples := flag.Int("triples", 1000, "number of triples (uniform)")
	trueFrac := flag.Float64("true-frac", 0.5, "fraction of true triples (uniform)")
	precision := flag.Float64("precision", 0.7, "per-source precision (uniform)")
	recall := flag.Float64("recall", 0.5, "per-source recall (uniform)")
	pages := flag.Int("pages", 500, "corpus pages (extraction)")
	flag.Parse()

	d, err := build(*kind, *seed, *sources, *triples, *trueFrac, *precision, *recall, *pages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.Write(w, d); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	nt, nf := d.CountLabels()
	fmt.Fprintf(os.Stderr, "datagen: %s — %d sources, %d triples (%d true, %d false)\n",
		*kind, d.NumSources(), d.NumTriples(), nt, nf)
}

func build(kind string, seed int64, sources, triples int, trueFrac, precision, recall float64, pages int) (*triple.Dataset, error) {
	switch kind {
	case "obama":
		return dataset.Obama(), nil
	case "reverb":
		return dataset.SimulatedReVerb(seed)
	case "restaurant":
		return dataset.SimulatedRestaurant(seed, 1)
	case "book":
		return dataset.SimulatedBook(seed)
	case "uniform":
		return dataset.Generate(dataset.UniformSpec(sources, triples, trueFrac, precision, recall, seed))
	case "correlated":
		return dataset.SyntheticCorrelated(seed, false)
	case "anti":
		return dataset.SyntheticCorrelated(seed, true)
	case "extraction":
		corpus, err := extract.NewCorpus(extract.CorpusConfig{
			NumPages:             pages,
			FactsPerPage:         5,
			MultiPatternFraction: 0.3,
			Seed:                 seed,
		})
		if err != nil {
			return nil, err
		}
		return extract.Run(corpus, extract.StandardExtractors(), seed)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
