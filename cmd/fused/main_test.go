package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"corrfuse/internal/store"
	"corrfuse/internal/triple"
)

func writeStore(t *testing.T) string {
	t.Helper()
	st := store.New()
	tr := func(s string) triple.Triple { return triple.Triple{Subject: s, Predicate: "p", Object: "v"} }
	for i := 0; i < 8; i++ {
		st.Put(store.Entry{Triple: tr(fmt.Sprintf("t%d", i)), Sources: []string{"good1", "good2"}, Label: "true"})
	}
	for i := 0; i < 4; i++ {
		st.Put(store.Entry{Triple: tr(fmt.Sprintf("f%d", i)), Sources: []string{"bad"}, Label: "false"})
	}
	st.Put(store.Entry{Triple: tr("u1"), Sources: []string{"good1"}})
	path := filepath.Join(t.TempDir(), "store.jsonl")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeLifecycle boots the binary's run loop on a free port, exercises
// the API, shuts down on context cancel and checks the final persistence.
func TestServeLifecycle(t *testing.T) {
	testServeLifecycle(t, 1, 0)
}

// TestServeLifecycleSharded runs the same lifecycle with a sharded batch
// model and concurrent shard rebuilds.
func TestServeLifecycleSharded(t *testing.T) {
	testServeLifecycle(t, 4, 2)
}

func testServeLifecycle(t *testing.T, shards, rebuildWorkers int) {
	path := writeStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			storePath: path, addr: "127.0.0.1:0", method: "corr", scope: "global",
			smoothing: 0.1, refresh: time.Hour,
			shards: shards, rebuildWorkers: rebuildWorkers, partialRebuild: true,
		}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	obs, _ := json.Marshal(map[string]string{"source": "good2", "subject": "u1", "predicate": "p", "object": "v"})
	resp, err = http.Post(base+"/v1/observe", "application/json", bytes.NewReader(obs))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/refuse", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	var refuse map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&refuse); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if shards > 1 {
		// -partial-rebuild routed the forced re-fusion through the
		// dirty-shard path: only the ingested claim's shard retrained.
		if got, ok := refuse["rebuiltShards"].(float64); !ok || int(got) != 1 {
			t.Errorf("refuse rebuiltShards = %v, want 1", refuse["rebuiltShards"])
		}
		if got, ok := refuse["reusedShards"].(float64); !ok || int(got) != shards-1 {
			t.Errorf("refuse reusedShards = %v, want %d", refuse["reusedShards"], shards-1)
		}
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}

	// -persist defaulted to the store path: the ingested claim and the
	// fusion results must be on disk.
	st, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := st.Get(triple.Triple{Subject: "u1", Predicate: "p", Object: "v"})
	if !ok || len(e.Sources) != 2 {
		t.Fatalf("ingested provenance not persisted: %+v", e)
	}
	if e.Probability == 0 {
		t.Fatal("fusion result not persisted")
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	base := func(path string) options {
		return options{storePath: path, addr: ":0", method: "corr", scope: "global", persist: "-", shards: 1}
	}
	if err := run(ctx, base(""), nil); err == nil {
		t.Error("missing store should fail")
	}
	if err := run(ctx, base("/nonexistent.jsonl"), nil); err == nil {
		t.Error("unreadable store should fail")
	}
	path := writeStore(t)
	o := base(path)
	o.method = "nope"
	if err := run(ctx, o, nil); err == nil {
		t.Error("unknown method should fail")
	}
	o = base(path)
	o.scope = "sideways"
	if err := run(ctx, o, nil); err == nil {
		t.Error("unknown scope should fail")
	}
	o = base(path)
	o.shards = -3
	if err := run(ctx, o, nil); err == nil {
		t.Error("negative shards should fail")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := store.New().Save(empty); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, base(empty), nil); err == nil {
		t.Error("empty store should fail")
	}
	o = base(path)
	o.logLevel = "loud"
	if err := run(ctx, o, nil); err == nil {
		t.Error("unknown log level should fail")
	}
}

// TestObservabilityEndpoints boots the run loop with a debug listener and
// checks the observability surface end to end: trace ID echo and retrieval
// via /debug/traces, build info on /healthz, and pprof + metrics on the
// separate debug address.
func TestObservabilityEndpoints(t *testing.T) {
	path := writeStore(t)

	// Reserve a port for the debug listener (closed again before run binds
	// it; the tiny reuse race is acceptable in tests).
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := dln.Addr().String()
	dln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			storePath: path, addr: "127.0.0.1:0", method: "corr", scope: "global",
			smoothing: 0.1, refresh: time.Hour, shards: 1, persist: "-",
			logFormat: "json", logLevel: "warn",
			debugAddr: debugAddr, traceBuffer: 32,
		}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	defer func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server never shut down")
		}
	}()

	// A well-formed caller trace ID is honored and echoed.
	req, _ := http.NewRequest("GET", base+"/healthz", nil)
	req.Header.Set("X-Corrfused-Trace-Id", "cmd-test-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if got := resp.Header.Get("X-Corrfused-Trace-Id"); got != "cmd-test-trace-1" {
		t.Errorf("trace ID not echoed: got %q", got)
	}
	for _, field := range []string{"version", "commit", "goVersion"} {
		if v, ok := health[field].(string); !ok || v == "" {
			t.Errorf("healthz missing build info field %q: %v", field, health[field])
		}
	}

	// The traced request is retrievable from the debug listener's ring.
	dbase := "http://" + debugAddr
	resp, err = http.Get(dbase + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug /debug/traces: %d", resp.StatusCode)
	}
	if !bytes.Contains(raw, []byte("cmd-test-trace-1")) {
		t.Errorf("trace not found in /debug/traces: %s", raw)
	}

	// pprof and the metrics mirror are up on the debug address.
	resp, err = http.Get(dbase + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug pprof: %d", resp.StatusCode)
	}
	resp, err = http.Get(dbase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(raw, []byte("corrfused_build_info{")) {
		t.Errorf("debug /metrics missing corrfused_build_info: %.200s", raw)
	}
}

// TestServeLifecycleWAL runs the lifecycle with a durable write-ahead log:
// observe acks carry the WAL sequence, health reports the log state, and a
// clean shutdown truncates the log down to what the persisted store covers
// (so the next boot replays nothing).
func TestServeLifecycleWAL(t *testing.T) {
	path := writeStore(t)
	walDir := filepath.Join(filepath.Dir(path), "wal")
	o := options{
		storePath: path, addr: "127.0.0.1:0", method: "corr", scope: "global",
		smoothing: 0.1, refresh: time.Hour, shards: 1,
		walDir: walDir, walSync: "always", walSyncInterval: 100 * time.Millisecond,
		walSegmentBytes: 1 << 20,
	}
	boot := func() (string, context.CancelFunc, chan error) {
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		errc := make(chan error, 1)
		go func() { errc <- run(ctx, o, ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr, cancel, errc
		case err := <-errc:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
		}
		panic("unreachable")
	}
	shutdown := func(cancel context.CancelFunc, errc chan error) {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server never shut down")
		}
	}

	base, cancel, errc := boot()
	obs, _ := json.Marshal(map[string]string{"source": "good2", "subject": "wal-live", "predicate": "p", "object": "v"})
	resp, err := http.Post(base+"/v1/observe", "application/json", bytes.NewReader(obs))
	if err != nil {
		t.Fatal(err)
	}
	var ack map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d", resp.StatusCode)
	}
	if seq, ok := ack["walSeq"].(float64); !ok || seq < 1 {
		t.Fatalf("observe ack has no walSeq: %v", ack)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if _, ok := health["wal"].(map[string]any); !ok {
		t.Fatalf("healthz has no wal status: %v", health)
	}
	shutdown(cancel, errc)

	// Clean shutdown persisted + truncated: the reboot recovers nothing
	// but still finds the ingested claim in the store.
	base, cancel, errc = boot()
	defer shutdown(cancel, errc)
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = nil
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	w, ok := health["wal"].(map[string]any)
	if !ok {
		t.Fatalf("rebooted healthz has no wal status: %v", health)
	}
	if n := w["recoveredRecords"].(float64); n != 0 {
		t.Errorf("clean shutdown left %v records to replay", n)
	}
	st, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(triple.Triple{Subject: "wal-live", Predicate: "p", Object: "v"}); !ok {
		t.Error("ingested claim not persisted across clean WAL shutdown")
	}
}

// TestHTTPServerTimeouts: both listeners are built through options.httpServer,
// so every http.Server carries the connection-level timeouts — the zero
// values they used to ship with left the daemon open to slowloris clients
// holding connections forever.
func TestHTTPServerTimeouts(t *testing.T) {
	o := options{
		httpReadHeaderTimeout: 10 * time.Second,
		httpReadTimeout:       2 * time.Minute,
		httpWriteTimeout:      10 * time.Minute,
		httpIdleTimeout:       2 * time.Minute,
	}
	h := http.NewServeMux()
	hs := o.httpServer(h)
	if hs.Handler == nil {
		t.Fatal("httpServer dropped the handler")
	}
	if hs.ReadHeaderTimeout != o.httpReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", hs.ReadHeaderTimeout, o.httpReadHeaderTimeout)
	}
	if hs.ReadTimeout != o.httpReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", hs.ReadTimeout, o.httpReadTimeout)
	}
	if hs.WriteTimeout != o.httpWriteTimeout {
		t.Errorf("WriteTimeout = %v, want %v", hs.WriteTimeout, o.httpWriteTimeout)
	}
	if hs.IdleTimeout != o.httpIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", hs.IdleTimeout, o.httpIdleTimeout)
	}
}
