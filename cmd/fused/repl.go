package main

// Replication wiring: mountLeader exposes the WAL-shipping endpoints on the
// debug/admin listener, startFollower bootstraps (if needed) and runs the
// fetch-verify-apply loop against a leader, bridging its status into the
// server's health and metric surfaces.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"corrfuse/internal/obs"
	"corrfuse/internal/repl"
	"corrfuse/internal/serve"
	"corrfuse/internal/store"
	"corrfuse/internal/wal"
)

// loggerf bridges the structured logger onto the printf-style Logf sinks
// repl and wal expect.
func loggerf(ctx context.Context, logger *obs.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		logger.Info(ctx, fmt.Sprintf(format, args...))
	}
}

// mountLeader exposes GET /repl/wal and GET /repl/snapshot on the debug mux
// — replication is an operator surface, so it rides the debug listener, not
// the public one.
func mountLeader(ctx context.Context, dmux *http.ServeMux, srv *serve.Server, logger *obs.Logger) error {
	leader, err := repl.NewLeader(repl.LeaderOptions{
		WAL:           srv.WAL(),
		CoveredSeq:    srv.CoveredSeq,
		WriteSnapshot: srv.WriteSnapshot,
		Logf:          loggerf(ctx, logger),
	})
	if err != nil {
		return err
	}
	dmux.Handle("/repl/", leader)
	return nil
}

// bootstrapFollower, when the follower's WAL directory holds no history,
// downloads the leader's store snapshot, writes it to storePath (tmp +
// rename, fsynced) and pins the WAL to the first uncovered sequence. With
// existing local history it does nothing: the normal WAL replay resumes
// from it. It reports whether a bootstrap happened.
func bootstrapFollower(ctx context.Context, o options, logger *obs.Logger) (bool, error) {
	has, err := wal.HasSegments(o.walDir)
	if err != nil || has {
		return false, err
	}
	covered, body, err := repl.Snapshot(ctx, nil, o.follow)
	if err != nil {
		return false, fmt.Errorf("follower bootstrap: %w", err)
	}
	defer body.Close()

	if err := os.MkdirAll(filepath.Dir(o.storePath), 0o755); err != nil {
		return false, err
	}
	tmp := o.storePath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return false, err
	}
	if _, err := io.Copy(f, body); err != nil {
		//lint:ignore errswallow error path already reports the copy failure; close is best-effort cleanup
		f.Close()
		os.Remove(tmp)
		return false, fmt.Errorf("follower bootstrap: store download: %w", err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errswallow error path already reports the sync failure; close is best-effort cleanup
		f.Close()
		os.Remove(tmp)
		return false, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return false, err
	}
	if err := os.Rename(tmp, o.storePath); err != nil {
		os.Remove(tmp)
		return false, err
	}
	// A binary snapshot left next to the store by a previous run would
	// shadow the freshly bootstrapped JSONL on load; remove it.
	if err := os.Remove(store.BinaryPath(o.storePath)); err != nil && !os.IsNotExist(err) {
		return false, fmt.Errorf("follower bootstrap: removing stale binary snapshot: %w", err)
	}
	if err := wal.WriteBootstrapSegment(o.walDir, covered+1); err != nil {
		return false, fmt.Errorf("follower bootstrap: %w", err)
	}
	logger.Info(ctx, "follower bootstrapped from leader snapshot",
		"leader", o.follow, "coveredSeq", covered, "store", o.storePath)
	return true, nil
}

// startFollower builds the fetch loop against the leader, installs its
// status into the server's health/metrics surfaces, and runs it until ctx
// ends. A leader outage degrades to stale reads with backoff — the loop
// never takes the process down.
func startFollower(ctx context.Context, o options, srv *serve.Server, logger *obs.Logger) error {
	follower, err := repl.NewFollower(repl.FollowerOptions{
		LeaderURL: o.follow,
		WAL:       srv.WAL(),
		Apply:     srv.ApplyReplicated,
		// Automatic 410 recovery: download a fresh snapshot and rebase the
		// local WAL in place, instead of parking on "operator must wipe and
		// re-bootstrap" until someone notices the stale follower.
		Rebootstrap: func(ctx context.Context) error {
			covered, body, err := repl.Snapshot(ctx, nil, o.follow)
			if err != nil {
				return err
			}
			defer body.Close()
			return srv.Rebootstrap(covered, body)
		},
		Logf: loggerf(ctx, logger),
	})
	if err != nil {
		return err
	}
	srv.SetReplStatus(func() serve.ReplStatus {
		st := follower.Status()
		return serve.ReplStatus{
			Connected:       st.Connected,
			AppliedSeq:      st.AppliedSeq,
			LeaderSeq:       st.LeaderSeq,
			SegmentsShipped: st.SegmentsShipped,
			LagRecords:      st.LagRecords,
			LagSeconds:      st.LagSeconds,
			Diverged:        st.Diverged,
			Rebootstraps:    st.Rebootstraps,
		}
	})
	go func() {
		// Run survives every fetch/apply failure internally and returns
		// only ctx's error at shutdown — nothing to report here.
		//lint:ignore errswallow Run returns only ctx.Err() at shutdown
		follower.Run(ctx)
	}()
	logger.Info(ctx, "follower replication started", "leader", o.follow)

	// Give the first fetch a moment so a freshly booted follower usually
	// reports connected on its first health probe; serving does not depend
	// on it (stale reads are the degraded mode, not an error).
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	for follower.Status().AppliedSeq == 0 && !follower.Status().Connected {
		select {
		case <-waitCtx.Done():
			return nil
		case <-time.After(20 * time.Millisecond):
		}
	}
	return nil
}
