package main

// Replication end-to-end tests: a live leader+follower pair wired through
// run() exactly as the binary wires them, covering follower bootstrap,
// read-only enforcement, leader-restart staleness, and — in the subprocess
// crash test — SIGKILL mid-replay with zero acked-write divergence.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// bootRun starts run() with o and returns the public base URL plus the
// shutdown pair. It fatals if the server never becomes ready.
func bootRun(t *testing.T, o options) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, o, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, errc
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("server never became ready")
	}
	panic("unreachable")
}

func shutdownRun(t *testing.T, cancel context.CancelFunc, errc chan error) {
	t.Helper()
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
}

// getMap fetches url and decodes the JSON object body, returning the status
// code alongside so callers can assert degraded states without fataling.
func getMap(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, m
}

// replStatus pulls the repl section out of a follower's /healthz.
func replStatus(t *testing.T, base string) (map[string]any, bool) {
	t.Helper()
	code, health := getMap(t, base+"/healthz")
	if code != http.StatusOK || health == nil {
		return nil, false
	}
	repl, ok := health["repl"].(map[string]any)
	return repl, ok
}

// waitUntil polls cond every 20ms until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func leaderOptions(t *testing.T, dir, debugAddr string) options {
	t.Helper()
	path := writeStore(t)
	return options{
		storePath: path, addr: "127.0.0.1:0", method: "corr", scope: "global",
		smoothing: 0.1, refresh: time.Hour, shards: 1,
		walDir: filepath.Join(dir, "wal"), walSync: "always",
		walSyncInterval: 100 * time.Millisecond, walSegmentBytes: 1 << 20,
		walRetain: 4, debugAddr: debugAddr, logLevel: "warn",
	}
}

func followerOptions(dir, leaderURL string) options {
	return options{
		storePath: filepath.Join(dir, "store.jsonl"), addr: "127.0.0.1:0",
		method: "corr", scope: "global", smoothing: 0.1, refresh: time.Hour,
		shards: 1, walDir: filepath.Join(dir, "wal"), walSync: "interval",
		walSyncInterval: 50 * time.Millisecond, walSegmentBytes: 1 << 20,
		follow: leaderURL, logLevel: "info",
	}
}

// reservePort grabs a free listener address and releases it for run() to
// bind (the tiny reuse race is acceptable in tests).
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func observe(t *testing.T, base, source, subject string) (int, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(map[string]string{
		"source": source, "subject": subject, "predicate": "p", "object": "v",
	})
	resp, err := http.Post(base+"/v1/observe", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, m
}

// TestReplicationLifecycle wires a leader and a follower exactly as the
// binary does: the follower bootstraps from the leader's snapshot, tails the
// shipped log, serves reads while rejecting writes, and — across a leader
// restart — degrades to stale reads with connected=0, then reconnects and
// resumes without losing its place.
func TestReplicationLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process lifecycle test")
	}
	leaderDir := t.TempDir()
	debugAddr := reservePort(t)
	lo := leaderOptions(t, leaderDir, debugAddr)
	leaderBase, leaderCancel, leaderErrc := bootRun(t, lo)
	leaderURL := "http://" + debugAddr

	followerDir := t.TempDir()
	fo := followerOptions(followerDir, leaderURL)
	followerBase, followerCancel, followerErrc := bootRun(t, fo)
	defer func() { shutdownRun(t, followerCancel, followerErrc) }()

	// Bootstrap carried the seed store over: a seed triple is readable from
	// the follower without any log shipping.
	code, body := getMap(t, followerBase+"/v1/triple?subject=t0&predicate=p&object=v")
	if code != http.StatusOK {
		t.Fatalf("follower bootstrap read: %d %v", code, body)
	}

	// A write ingested through the leader becomes readable on the follower.
	if code, ack := observe(t, leaderBase, "good1", "repl-live"); code != http.StatusOK {
		t.Fatalf("leader observe: %d %v", code, ack)
	}
	waitUntil(t, 10*time.Second, "replicated triple on the follower", func() bool {
		code, _ := getMap(t, followerBase+"/v1/triple?subject=repl-live&predicate=p&object=v")
		return code == http.StatusOK
	})

	// The follower rejects writes with a structured 403 naming the leader.
	code, reject := observe(t, followerBase, "good1", "nope")
	if code != http.StatusForbidden {
		t.Fatalf("follower observe answered %d, want 403", code)
	}
	if l, _ := reject["leader"].(string); l != leaderURL {
		t.Fatalf("403 body does not name the leader: %v", reject)
	}

	// Health and metrics report the link as connected.
	waitUntil(t, 10*time.Second, "follower connected in /healthz", func() bool {
		st, ok := replStatus(t, followerBase)
		if !ok {
			return false
		}
		c, _ := st["connected"].(bool)
		return c
	})
	resp, err := http.Get(followerBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(raw, []byte("corrfused_repl_follower_connected 1")) {
		t.Fatalf("metrics do not report follower_connected 1:\n%.400s", raw)
	}

	// Kill the leader: the follower must keep serving (stale) and report the
	// link down — never crash.
	shutdownRun(t, leaderCancel, leaderErrc)
	waitUntil(t, 15*time.Second, "follower to notice the dead leader", func() bool {
		st, ok := replStatus(t, followerBase)
		if !ok {
			return false
		}
		c, _ := st["connected"].(bool)
		return !c
	})
	code, _ = getMap(t, followerBase+"/v1/triple?subject=repl-live&predicate=p&object=v")
	if code != http.StatusOK {
		t.Fatalf("stale read during leader outage answered %d, want 200", code)
	}
	resp, err = http.Get(followerBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(raw, []byte("corrfused_repl_follower_connected 0")) {
		t.Fatalf("metrics do not report follower_connected 0 during outage:\n%.400s", raw)
	}

	// Restart the leader on the same addresses: the follower reconnects by
	// itself (exponential backoff, no operator action) and resumes shipping.
	lo2 := lo
	leaderBase, leaderCancel, leaderErrc = bootRun(t, lo2)
	defer func() { shutdownRun(t, leaderCancel, leaderErrc) }()
	waitUntil(t, 30*time.Second, "follower to reconnect", func() bool {
		st, ok := replStatus(t, followerBase)
		if !ok {
			return false
		}
		c, _ := st["connected"].(bool)
		return c
	})
	if code, ack := observe(t, leaderBase, "good2", "repl-live2"); code != http.StatusOK {
		t.Fatalf("post-restart leader observe: %d %v", code, ack)
	}
	waitUntil(t, 10*time.Second, "post-restart replication", func() bool {
		code, _ := getMap(t, followerBase+"/v1/triple?subject=repl-live2&predicate=p&object=v")
		return code == http.StatusOK
	})
}

// Env gates for the follower half of the crash test.
const (
	replChildEnv    = "FUSED_REPL_CHILD"
	replChildDirEnv = "FUSED_REPL_DIR"
	replLeaderEnv   = "FUSED_REPL_LEADER"
)

// TestReplFollowerChildProcess is not a test in its own right: it is the
// follower process TestFollowerCrashConvergence SIGKILLs. Run directly it
// skips.
func TestReplFollowerChildProcess(t *testing.T) {
	if os.Getenv(replChildEnv) != "1" {
		t.Skip("helper process for TestFollowerCrashConvergence")
	}
	dir := os.Getenv(replChildDirEnv)
	o := followerOptions(dir, os.Getenv(replLeaderEnv))
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(context.Background(), o, ready) }()
	select {
	case addr := <-ready:
		// Publish the address atomically so the parent never reads a torn
		// file.
		tmp := filepath.Join(dir, ".addr.tmp")
		if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
			t.Fatal(err)
		}
	case err := <-errc:
		t.Fatalf("follower exited early: %v", err)
	}
	// Serve until SIGKILL. This never returns cleanly by design.
	t.Fatal(<-errc)
}

// TestFollowerCrashConvergence is the replication durability proof: a real
// follower process is SIGKILLed mid-replay — while writers hammer the leader
// — then restarted against the same directories. It must resume from its
// local log (bootstrap happens once), catch back up, and converge to the
// leader's exact fused results: every acknowledged write present on both
// sides with probabilities equal to 1e-9.
func TestFollowerCrashConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	leaderDir := t.TempDir()
	debugAddr := reservePort(t)
	lo := leaderOptions(t, leaderDir, debugAddr)
	leaderBase, leaderCancel, leaderErrc := bootRun(t, lo)
	defer func() { shutdownRun(t, leaderCancel, leaderErrc) }()
	leaderURL := "http://" + debugAddr

	// Concurrent writers record exactly the observations whose 200 we saw.
	const writers = 3
	sources := []string{"good1", "good2", "bad"}
	acked := make([][]string, writers)
	var ackCount atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	client := &http.Client{Timeout: 5 * time.Second}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				subject := fmt.Sprintf("crash-%d-%d", w, i)
				raw, _ := json.Marshal(map[string]string{
					"source": sources[(w+i)%len(sources)], "subject": subject,
					"predicate": "p", "object": "v",
				})
				resp, err := client.Post(leaderBase+"/v1/observe", "application/json", bytes.NewReader(raw))
				if err != nil {
					return
				}
				var body map[string]any
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					return
				}
				acked[w] = append(acked[w], subject)
				ackCount.Add(1)
			}
		}(w)
	}
	var stopOnce sync.Once
	stopWriters := func() {
		stopOnce.Do(func() { close(stop) })
		wg.Wait()
	}
	defer stopWriters()
	waitUntil(t, 30*time.Second, "initial acknowledged writes", func() bool {
		return ackCount.Load() >= 40
	})

	followerDir := t.TempDir()
	startChild := func() (*exec.Cmd, string, chan error, *bytes.Buffer) {
		os.Remove(filepath.Join(followerDir, "addr"))
		cmd := exec.Command(os.Args[0], "-test.run=^TestReplFollowerChildProcess$", "-test.v")
		cmd.Env = append(os.Environ(),
			replChildEnv+"=1", replChildDirEnv+"="+followerDir, replLeaderEnv+"="+leaderURL)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitErr := make(chan error, 1)
		go func() { waitErr <- cmd.Wait() }()
		var base string
		deadline := time.Now().Add(20 * time.Second)
		for {
			if raw, err := os.ReadFile(filepath.Join(followerDir, "addr")); err == nil && len(raw) > 0 {
				base = "http://" + string(raw)
				break
			}
			select {
			case <-waitErr:
				t.Fatalf("follower child exited before becoming ready:\n%s", out.String())
			default:
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				<-waitErr
				t.Fatalf("follower child never became ready:\n%s", out.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
		return cmd, base, waitErr, &out
	}

	// First follower: wait for mid-replay (some records applied, writers
	// still pushing the head forward), then SIGKILL it.
	child, childBase, childWait, childOut := startChild()
	waitUntil(t, 30*time.Second, "follower mid-replay progress", func() bool {
		select {
		case <-childWait:
			t.Fatalf("follower child died on its own:\n%s", childOut.String())
		default:
		}
		st, ok := replStatus(t, childBase)
		if !ok {
			return false
		}
		applied, _ := st["appliedSeq"].(float64)
		return applied >= 20
	})
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-childWait // SIGKILL: Wait error by design

	// Keep writing through the outage so the restart lands mid-stream too.
	waitUntil(t, 30*time.Second, "more acknowledged writes during the outage", func() bool {
		return ackCount.Load() >= 120
	})

	// Second follower over the same directories: local WAL history exists,
	// so it must resume (replay + refetch), not re-bootstrap.
	child2, child2Base, child2Wait, child2Out := startChild()
	child2Reaped := false
	reapChild2 := func() {
		// Wait joins the output copiers: child2Out is only read after this.
		child2.Process.Kill()
		if !child2Reaped {
			<-child2Wait
			child2Reaped = true
		}
	}
	defer reapChild2()
	stopWriters()
	total := int(ackCount.Load())

	// The leader's log head after the last ack: the follower is converged
	// when it has applied exactly that far.
	code, health := getMap(t, leaderBase+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("leader healthz: %d", code)
	}
	walInfo, ok := health["wal"].(map[string]any)
	if !ok {
		t.Fatalf("leader healthz has no wal section: %v", health)
	}
	headSeq, _ := walInfo["seq"].(float64)
	if headSeq < float64(total) {
		t.Fatalf("leader wal seq %v below %d acked writes", headSeq, total)
	}
	waitUntil(t, 60*time.Second, "restarted follower to catch up", func() bool {
		select {
		case <-child2Wait:
			child2Reaped = true
			t.Fatalf("restarted follower died:\n%s", child2Out.String())
		default:
		}
		st, ok := replStatus(t, child2Base)
		if !ok {
			return false
		}
		applied, _ := st["appliedSeq"].(float64)
		lag, _ := st["lagRecords"].(float64)
		connected, _ := st["connected"].(bool)
		return connected && lag == 0 && applied >= headSeq
	})

	// Force a full re-fusion on both sides, then compare: every acknowledged
	// write readable on the follower with the leader's exact probability.
	for _, base := range []string{leaderBase, child2Base} {
		resp, err := client.Post(base+"/v1/refuse", "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("refuse on %s: %d", base, resp.StatusCode)
		}
	}
	lost, diverged := 0, 0
	for w := range acked {
		for _, subject := range acked[w] {
			q := "/v1/triple?subject=" + subject + "&predicate=p&object=v"
			lcode, lm := getMap(t, leaderBase+q)
			fcode, fm := getMap(t, child2Base+q)
			if lcode != http.StatusOK || fcode != http.StatusOK || lm == nil || fm == nil {
				lost++
				t.Errorf("acked %s: leader %d, follower %d", subject, lcode, fcode)
				continue
			}
			lr, _ := lm["result"].(map[string]any)
			fr, _ := fm["result"].(map[string]any)
			if lr == nil || fr == nil {
				lost++
				t.Errorf("acked %s: malformed triple response", subject)
				continue
			}
			lp, _ := lr["probability"].(float64)
			fp, _ := fr["probability"].(float64)
			if math.Abs(lp-fp) > 1e-9 {
				diverged++
				t.Errorf("%s diverged: leader %.12f, follower %.12f", subject, lp, fp)
			}
		}
	}
	if lost == 0 && diverged == 0 {
		t.Logf("follower crash convergence: %d acked writes, SIGKILL mid-replay, 0 lost, 0 diverged", total)
	}

	// The restarted follower resumed from local history: exactly one
	// bootstrap happened across both child lives.
	reapChild2()
	if strings.Count(childOut.String()+child2Out.String(), "follower bootstrapped from leader snapshot") > 1 {
		t.Error("restarted follower re-bootstrapped instead of resuming from its log")
	}
}
