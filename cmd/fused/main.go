// Command fused serves truth discovery over HTTP: it loads a JSONL store,
// trains a fusion model, and answers queries while ingesting new claims,
// periodically re-fusing the accumulated data with the correlation-aware
// batch model.
//
// Usage:
//
//	fused -store data.jsonl [-addr :8080]
//	      [-method precrec|corr|aggressive|elastic|union|3est|ltm]
//	      [-alpha 0.5] [-scope global|subject] [-smoothing 0]
//	      [-refresh 30s] [-persist out.jsonl] [-parallelism 0]
//	      [-shards 1] [-rebuild-workers 0] [-partial-rebuild]
//	      [-max-score-triples 1024] [-max-body-bytes 1048576]
//	      [-wal dir] [-wal-sync always|interval|off]
//	      [-wal-sync-interval 100ms] [-wal-segment-bytes 4194304]
//	      [-wal-retain-segments 0] [-follow http://leader:6060]
//	      [-log-format text|json] [-log-level info] [-slow-request 1s]
//	      [-trace-buffer 256] [-trace-threshold 0]
//	      [-debug-addr localhost:6060] [-no-instrumentation]
//	      [-rate-limit 0] [-rate-burst 0] [-request-timeout 0]
//	      [-max-inflight 0] [-http-read-header-timeout 10s]
//	      [-http-read-timeout 2m] [-http-write-timeout 10m]
//	      [-http-idle-timeout 2m]
//
// Endpoints (all JSON):
//
//	POST /v1/observe      ingest claims; instantly fresh probabilities
//	GET  /v1/triple       query one triple (?subject=&predicate=&object=)
//	GET  /v1/subject/{s}  fused results about a subject, pre-ranked
//	GET  /v1/source/{s}   fused results a source contributed to, pre-ranked
//	POST /v1/score        bulk-score up to -max-score-triples triples
//	POST /v1/refuse       force a batch re-fusion now
//	GET  /healthz         liveness + snapshot sequence + build info
//	GET  /metrics         Prometheus metrics
//	GET  /debug/traces    ring buffer of recent request/refresh traces
//
// Every request is traced: a well-formed X-Corrfused-Trace-Id header is
// honored (and echoed on the response; a fresh ID is generated otherwise),
// stages are timed into per-endpoint and per-stage latency histograms, and
// finished traces land in the /debug/traces ring buffer (-trace-buffer
// entries, filtered to ≥ -trace-threshold when set). Requests slower than
// -slow-request are logged as structured warnings carrying the trace ID.
// -log-format json switches logs to one JSON object per line.
//
// With -debug-addr the service additionally serves net/http/pprof profiles,
// /debug/traces and /metrics on a SEPARATE listener — bind it to localhost
// so profiling and introspection never ride the public address.
//
// Reads are served from an immutable per-snapshot index frozen at every
// re-fusion: point lookups and pre-ranked subject/source listings are O(1)
// and lock-free, and every response reports the matching snapshot and index
// versions (see the README's "Query path" section). /v1/score requests
// beyond -max-score-triples triples, and /v1/score or /v1/observe bodies
// beyond -max-body-bytes, are rejected with 413 and a structured error;
// raise -max-body-bytes for large batch ingestion.
//
// With -wal DIR every observation is appended to a write-ahead log and made
// durable BEFORE it is acknowledged: a crash (even SIGKILL or a power cut,
// under -wal-sync always) loses no acknowledged write — startup replays the
// log suffix the loaded store does not cover, and every successful persist
// truncates the segments the snapshot now covers. -wal-sync always (the
// default) group-commits concurrent writers into shared fsyncs; interval
// fsyncs every -wal-sync-interval (bounding power-cut loss to one interval);
// off leaves flushing to the OS. Without -wal an acknowledgment only
// promises the claim reached memory; the window since the last persist is
// lost on a crash. See the README's "Durability" section.
//
// Replication (see the README's "Replication" section): a -wal leader with
// -debug-addr ships its log from GET /repl/wal on the debug listener (plus a
// bootstrap snapshot on GET /repl/snapshot); a process started with
// -follow <leader-debug-url> becomes a read-only follower — it bootstraps
// from the leader snapshot when its local WAL is empty, pulls and re-verifies
// CRC'd log segments, applies them through the normal store path, rebuilds
// its own snapshots/indexes, and serves the read endpoints while answering
// /v1/observe with 403 pointing at the leader. Followers report lag on
// /healthz, /v1/refuse and the corrfused_repl_* metrics; a leader outage
// degrades to stale reads with backoff, never a follower crash. Set
// -wal-retain-segments on the leader so briefly-lagging followers catch up
// from retained segments instead of re-bootstrapping (HTTP 410).
//
// Admission control (all off by default; see the README's "Admission
// control" section): -rate-limit gives every API key (X-Api-Key header) a
// token bucket of -rate-burst depth and refuses over-budget /v1 requests
// with 429 + Retry-After; -request-timeout bounds each /v1 request's
// context, and the deadline propagates into WAL commit waits and rebuild
// stages (-request-timeout×10 for /v1/refuse); -max-inflight caps
// concurrently executing /v1 requests, shedding reads with 503 before
// durable writes — earlier still while fsyncs stall or a rebuild runs.
// Concurrent /v1/refuse requests always coalesce into one rebuild. The
// -http-*-timeout flags set the connection-level http.Server timeouts on
// both listeners (finite by default — the slowloris guard).
//
// With -shards N (N > 1) the store is partitioned by subject hash and every
// batch re-fusion trains the N shard models concurrently on
// -rebuild-workers goroutines, swapping them in atomically as one snapshot;
// /metrics then reports per-shard rebuild timings. -partial-rebuild
// (default on, effective only when sharded) makes those re-fusions retrain
// only the shards whose subjects changed since the last snapshot, adopting
// every clean shard's model verbatim — model retraining, the dominant cost
// of a refresh, then tracks the change rate rather than the store size.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"corrfuse"
	"corrfuse/internal/obs"
	"corrfuse/internal/serve"
	"corrfuse/internal/store"
	"corrfuse/internal/wal"
)

// options collects the flag values that shape the service.
type options struct {
	storePath string
	addr      string
	method    string
	scope     string
	persist   string
	snapshot  string

	alpha     float64
	smoothing float64
	refresh   time.Duration

	parallelism     int
	shards          int
	rebuildWorkers  int
	partialRebuild  bool
	maxScoreTriples int
	maxBodyBytes    int64

	walDir          string
	walSync         string
	walSyncInterval time.Duration
	walSegmentBytes int64
	walRetain       int

	follow string

	logFormat      string
	logLevel       string
	slowRequest    time.Duration
	traceBuffer    int
	traceThreshold time.Duration
	debugAddr      string
	noInstrument   bool

	rateLimit      float64
	rateBurst      int
	requestTimeout time.Duration
	maxInFlight    int

	httpReadHeaderTimeout time.Duration
	httpReadTimeout       time.Duration
	httpWriteTimeout      time.Duration
	httpIdleTimeout       time.Duration
}

// httpServer builds an http.Server with the connection-level timeouts
// applied. Both listeners (public and debug) go through here: a server with
// zero timeouts holds a connection open for as long as the peer cares to
// dribble bytes — the classic slowloris hole — so the defaults are finite
// and every knob is flag-overridable (0 disables that timeout).
func (o options) httpServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: o.httpReadHeaderTimeout,
		ReadTimeout:       o.httpReadTimeout,
		WriteTimeout:      o.httpWriteTimeout,
		IdleTimeout:       o.httpIdleTimeout,
	}
}

func main() {
	var o options
	flag.StringVar(&o.storePath, "store", "", "input store (JSONL; required)")
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.method, "method", "corr", "fusion method: precrec, corr, aggressive, elastic, union, 3est, ltm")
	flag.Float64Var(&o.alpha, "alpha", 0, "a-priori truth probability (0 = derive from labels)")
	flag.StringVar(&o.scope, "scope", "global", "accountability scope: global or subject")
	flag.Float64Var(&o.smoothing, "smoothing", 0, "add-k smoothing for quality estimation")
	flag.DurationVar(&o.refresh, "refresh", 30*time.Second, "background re-fusion period (0 disables)")
	flag.StringVar(&o.persist, "persist", "", "save the store to this path after re-fusions and on shutdown (default: -store path; \"-\" disables)")
	flag.StringVar(&o.snapshot, "snapshot-format", serve.SnapshotBinary, "cold-start snapshot format maintained next to the JSONL store: binary (mmap-able .cfsn, millisecond restarts) or jsonl (JSONL only)")
	flag.IntVar(&o.parallelism, "parallelism", 0, "scoring goroutines per batch (0 = GOMAXPROCS)")
	flag.IntVar(&o.shards, "shards", 1, "subject-hash shards for the batch model (1 = monolithic)")
	flag.IntVar(&o.rebuildWorkers, "rebuild-workers", 0, "goroutines rebuilding shard models concurrently (0 = GOMAXPROCS)")
	flag.BoolVar(&o.partialRebuild, "partial-rebuild", true, "retrain only dirty shards on re-fusions (effective with -shards > 1)")
	flag.IntVar(&o.maxScoreTriples, "max-score-triples", serve.DefaultMaxScoreTriples, "max triples per /v1/score request (larger batches get 413)")
	flag.Int64Var(&o.maxBodyBytes, "max-body-bytes", serve.DefaultMaxBodyBytes, "max request body bytes for /v1/score and /v1/observe (larger bodies get 413)")
	flag.StringVar(&o.walDir, "wal", "", "write-ahead log directory: observes are durable before acknowledged (empty disables)")
	flag.StringVar(&o.walSync, "wal-sync", wal.SyncAlways, "WAL fsync policy: always (group commit per ack), interval, off")
	flag.DurationVar(&o.walSyncInterval, "wal-sync-interval", wal.DefaultSyncInterval, "WAL fsync period under -wal-sync interval")
	flag.Int64Var(&o.walSegmentBytes, "wal-segment-bytes", wal.DefaultSegmentBytes, "rotate WAL segments past this size")
	flag.IntVar(&o.walRetain, "wal-retain-segments", 0, "keep the newest N snapshot-covered WAL segments across truncation (set on leaders so lagging followers catch up without a re-bootstrap)")
	flag.StringVar(&o.follow, "follow", "", "replicate from this leader's debug/admin base URL (follower mode: read-only API, requires -wal; bootstraps from the leader snapshot when the local WAL is empty)")
	flag.StringVar(&o.logFormat, "log-format", "text", "log format: text or json (one object per line)")
	flag.StringVar(&o.logLevel, "log-level", "info", "log level: debug, info, warn, error")
	flag.DurationVar(&o.slowRequest, "slow-request", time.Second, "log a structured warning for requests at least this slow (0 disables)")
	flag.IntVar(&o.traceBuffer, "trace-buffer", 256, "recent traces retained for /debug/traces")
	flag.DurationVar(&o.traceThreshold, "trace-threshold", 0, "retain only traces at least this slow (0 retains all)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve net/http/pprof, /debug/traces and /metrics on this separate address (empty disables; bind to localhost)")
	flag.BoolVar(&o.noInstrument, "no-instrumentation", false, "disable per-request tracing/histograms (overhead benchmarking only)")
	flag.Float64Var(&o.rateLimit, "rate-limit", 0, "sustained /v1 requests per second per API key (X-Api-Key header; keyless requests share one bucket; 0 disables)")
	flag.IntVar(&o.rateBurst, "rate-burst", 0, "token-bucket burst on top of -rate-limit (0 = twice the rate)")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 0, "per-request deadline budget for /v1 endpoints, propagated into WAL commits and rebuilds; /v1/refuse gets 10x (0 disables)")
	flag.IntVar(&o.maxInFlight, "max-inflight", 0, "max concurrently executing /v1 requests; past it reads are shed with 503 before durable writes (0 disables)")
	flag.DurationVar(&o.httpReadHeaderTimeout, "http-read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout on both listeners (0 disables; slowloris guard)")
	flag.DurationVar(&o.httpReadTimeout, "http-read-timeout", 2*time.Minute, "http.Server ReadTimeout on both listeners (0 disables)")
	flag.DurationVar(&o.httpWriteTimeout, "http-write-timeout", 10*time.Minute, "http.Server WriteTimeout on both listeners; must exceed the longest /v1/refuse rebuild (0 disables)")
	flag.DurationVar(&o.httpIdleTimeout, "http-idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections on both listeners (0 disables)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, o, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fused:", err)
		os.Exit(1)
	}
}

// run builds and serves the fusion service until ctx is canceled. When
// ready is non-nil it receives the bound listen address once the server
// accepts connections (used by tests to pick a free port with -addr :0).
func run(ctx context.Context, o options, ready chan<- string) error {
	if o.storePath == "" {
		return fmt.Errorf("-store is required")
	}
	if o.shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", o.shards)
	}
	level, err := obs.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level, o.logFormat)

	if o.follow != "" {
		if o.walDir == "" {
			return fmt.Errorf("-follow requires -wal: the follower's own log is what replays on restart and reports the replication position")
		}
		// First boot of a follower: pull the leader's store snapshot and pin
		// the local WAL to the first uncovered sequence. With existing local
		// history the normal replay below resumes from it.
		if _, err := bootstrapFollower(ctx, o, logger); err != nil {
			return err
		}
	}

	// Cold start: prefer the mmap-able binary snapshot next to the JSONL
	// store; a missing one quietly parses JSONL, a corrupt one falls back
	// loudly (the reason lands in the log, /healthz and the
	// corrfused_snapshot_load_fallback metric).
	loadStart := time.Now()
	st, loadInfo, err := store.LoadPreferred(o.storePath)
	if err != nil {
		return err
	}
	loadDur := time.Since(loadStart)
	if loadInfo.FallbackReason != "" {
		logger.Warn(ctx, "binary snapshot rejected, loaded JSONL store",
			"store", o.storePath, "reason", loadInfo.FallbackReason)
	}
	logger.Info(ctx, "store loaded", "store", o.storePath, "format", loadInfo.Format,
		"bytes", loadInfo.Bytes, "triples", st.Len(), "duration", loadDur.String())
	if st.Len() == 0 {
		return fmt.Errorf("store %s is empty", o.storePath)
	}

	cfg := serve.Config{
		SnapshotFormat: o.snapshot,
		SnapshotLoad: &serve.SnapshotLoad{
			Format:         loadInfo.Format,
			Bytes:          loadInfo.Bytes,
			Mapped:         loadInfo.Mapped,
			Duration:       loadDur,
			FallbackReason: loadInfo.FallbackReason,
		},
		RefreshInterval:        o.refresh,
		MaxScoreTriples:        o.maxScoreTriples,
		MaxBodyBytes:           o.maxBodyBytes,
		WALDir:                 o.walDir,
		WALSync:                o.walSync,
		WALSyncInterval:        o.walSyncInterval,
		WALSegmentBytes:        o.walSegmentBytes,
		WALRetainSegments:      o.walRetain,
		ReadOnly:               o.follow != "",
		LeaderURL:              o.follow,
		Logger:                 logger,
		SlowRequestThreshold:   o.slowRequest,
		TraceBufferSize:        o.traceBuffer,
		TraceThreshold:         o.traceThreshold,
		DisableInstrumentation: o.noInstrument,
		RateLimit:              o.rateLimit,
		RateBurst:              o.rateBurst,
		RequestTimeout:         o.requestTimeout,
		MaxInFlight:            o.maxInFlight,
	}
	switch o.persist {
	case "":
		cfg.PersistPath = o.storePath
	case "-":
		cfg.PersistPath = ""
	default:
		cfg.PersistPath = o.persist
	}
	cfg.Options = corrfuse.Options{
		Smoothing:      o.smoothing,
		Parallelism:    o.parallelism,
		Shards:         o.shards,
		RebuildWorkers: o.rebuildWorkers,
	}
	cfg.PartialRebuild = o.partialRebuild && o.shards > 1
	if o.walDir != "" && cfg.PersistPath == "" {
		return fmt.Errorf("-wal requires a persist path (WAL truncation rides the snapshot save): drop -persist - or point -persist somewhere")
	}
	switch o.method {
	case "precrec":
		cfg.Options.Method = corrfuse.PrecRec
	case "corr":
		cfg.Options.Method = corrfuse.PrecRecCorr
	case "aggressive":
		cfg.Options.Method = corrfuse.PrecRecCorrAggressive
	case "elastic":
		cfg.Options.Method = corrfuse.PrecRecCorrElastic
	case "union":
		cfg.Options.Method = corrfuse.UnionK
	case "3est":
		cfg.Options.Method = corrfuse.ThreeEstimates
	case "ltm":
		cfg.Options.Method = corrfuse.LTM
	default:
		return fmt.Errorf("unknown method %q", o.method)
	}
	switch o.scope {
	case "global", "":
		cfg.PenalizeSilence = true
	case "subject":
		cfg.SubjectScope = true
	default:
		return fmt.Errorf("unknown scope %q", o.scope)
	}
	if o.alpha != 0 {
		cfg.Options.Alpha = o.alpha
	} else if nt, nf := deriveAlpha(st); nt+nf > 0 {
		cfg.Options.Alpha = clampAlpha(float64(nt) / float64(nt+nf))
	}

	srv, err := serve.New(st, cfg)
	if err != nil {
		return err
	}

	// Optional debug listener: pprof profiles, the trace ring buffer and a
	// metrics mirror on their own address, so profiling and introspection
	// never ride the public listener.
	var ds *http.Server
	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/traces", srv.TracesHandler())
		dmux.Handle("/metrics", srv.MetricsHandler())
		if o.follow == "" && srv.WAL() != nil {
			// Leaders ship their WAL (and a bootstrap snapshot) from the
			// debug listener; followers don't re-ship (no chaining yet).
			if err := mountLeader(ctx, dmux, srv, logger); err != nil {
				return err
			}
			logger.Info(ctx, "replication leader endpoints up", "addr", dln.Addr().String())
		}
		ds = o.httpServer(dmux)
		// Replication long-polls ride this listener and hold connections
		// open by design; deriving request contexts from ctx makes them
		// unwind at shutdown instead of stalling Shutdown's drain.
		ds.BaseContext = func(net.Listener) context.Context { return ctx }
		go ds.Serve(dln)
		logger.Info(ctx, "debug listener up", "addr", dln.Addr().String())
	}

	if o.follow != "" {
		if err := startFollower(ctx, o, srv, logger); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := o.httpServer(srv.Handler())
	srv.Start()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	bi := obs.GetBuildInfo()
	logger.Info(ctx, "fused: serving",
		"triples", st.Len(), "addr", ln.Addr().String(), "shards", o.shards,
		"version", bi.Version, "commit", bi.Commit, "go", bi.GoVersion)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info(ctx, "fused: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if ds != nil {
		ds.Shutdown(shutCtx)
	}
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return srv.Close(shutCtx)
}

func deriveAlpha(st *store.Store) (nt, nf int) {
	return st.Dataset().CountLabels()
}

func clampAlpha(a float64) float64 {
	if a < 0.05 {
		return 0.05
	}
	if a > 0.95 {
		return 0.95
	}
	return a
}
