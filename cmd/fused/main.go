// Command fused serves truth discovery over HTTP: it loads a JSONL store,
// trains a fusion model, and answers queries while ingesting new claims,
// periodically re-fusing the accumulated data with the correlation-aware
// batch model.
//
// Usage:
//
//	fused -store data.jsonl [-addr :8080]
//	      [-method precrec|corr|aggressive|elastic|union|3est|ltm]
//	      [-alpha 0.5] [-scope global|subject] [-smoothing 0]
//	      [-refresh 30s] [-persist out.jsonl] [-parallelism 0]
//
// Endpoints (all JSON):
//
//	POST /v1/observe      ingest claims; instantly fresh probabilities
//	GET  /v1/triple       query one triple (?subject=&predicate=&object=)
//	GET  /v1/subject/{s}  entries about a subject
//	GET  /v1/source/{s}   entries provided by a source
//	POST /v1/score        score a batch of triples
//	POST /v1/refuse       force a batch re-fusion now
//	GET  /healthz         liveness + snapshot sequence
//	GET  /metrics         Prometheus metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"corrfuse"
	"corrfuse/internal/serve"
	"corrfuse/internal/store"
)

func main() {
	storePath := flag.String("store", "", "input store (JSONL; required)")
	addr := flag.String("addr", ":8080", "listen address")
	method := flag.String("method", "corr", "fusion method: precrec, corr, aggressive, elastic, union, 3est, ltm")
	alpha := flag.Float64("alpha", 0, "a-priori truth probability (0 = derive from labels)")
	scope := flag.String("scope", "global", "accountability scope: global or subject")
	smoothing := flag.Float64("smoothing", 0, "add-k smoothing for quality estimation")
	refresh := flag.Duration("refresh", 30*time.Second, "background re-fusion period (0 disables)")
	persist := flag.String("persist", "", "save the store to this path after re-fusions and on shutdown (default: -store path; \"-\" disables)")
	parallelism := flag.Int("parallelism", 0, "scoring goroutines per batch (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, *storePath, *addr, *method, *alpha, *scope, *smoothing, *refresh, *persist, *parallelism, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fused:", err)
		os.Exit(1)
	}
}

// run builds and serves the fusion service until ctx is canceled. When
// ready is non-nil it receives the bound listen address once the server
// accepts connections (used by tests to pick a free port with -addr :0).
func run(ctx context.Context, storePath, addr, method string, alpha float64, scopeName string, smoothing float64, refresh time.Duration, persist string, parallelism int, ready chan<- string) error {
	if storePath == "" {
		return fmt.Errorf("-store is required")
	}
	st, err := store.Load(storePath)
	if err != nil {
		return err
	}
	if st.Len() == 0 {
		return fmt.Errorf("store %s is empty", storePath)
	}

	cfg := serve.Config{
		RefreshInterval: refresh,
		Logf:            log.Printf,
	}
	switch persist {
	case "":
		cfg.PersistPath = storePath
	case "-":
		cfg.PersistPath = ""
	default:
		cfg.PersistPath = persist
	}
	cfg.Options = corrfuse.Options{Smoothing: smoothing, Parallelism: parallelism}
	switch method {
	case "precrec":
		cfg.Options.Method = corrfuse.PrecRec
	case "corr":
		cfg.Options.Method = corrfuse.PrecRecCorr
	case "aggressive":
		cfg.Options.Method = corrfuse.PrecRecCorrAggressive
	case "elastic":
		cfg.Options.Method = corrfuse.PrecRecCorrElastic
	case "union":
		cfg.Options.Method = corrfuse.UnionK
	case "3est":
		cfg.Options.Method = corrfuse.ThreeEstimates
	case "ltm":
		cfg.Options.Method = corrfuse.LTM
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	switch scopeName {
	case "global", "":
		cfg.PenalizeSilence = true
	case "subject":
		cfg.SubjectScope = true
	default:
		return fmt.Errorf("unknown scope %q", scopeName)
	}
	if alpha != 0 {
		cfg.Options.Alpha = alpha
	} else if nt, nf := deriveAlpha(st); nt+nf > 0 {
		cfg.Options.Alpha = clampAlpha(float64(nt) / float64(nt+nf))
	}

	srv, err := serve.New(st, cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	srv.Start()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("fused: serving %d triples on %s", st.Len(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("fused: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return srv.Close(shutCtx)
}

func deriveAlpha(st *store.Store) (nt, nf int) {
	return st.Dataset().CountLabels()
}

func clampAlpha(a float64) float64 {
	if a < 0.05 {
		return 0.05
	}
	if a > 0.95 {
		return 0.95
	}
	return a
}
