package main

import (
	"os"
	"path/filepath"
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/store"
)

func writeInput(t *testing.T) string {
	t.Helper()
	d, err := dataset.SimulatedRestaurant(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "in.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.Write(f, d); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestRunAllMethods(t *testing.T) {
	in := writeInput(t)
	for _, method := range []string{"precrec", "corr", "aggressive", "elastic", "union", "3est", "ltm"} {
		out := filepath.Join(t.TempDir(), method+".jsonl")
		if err := run(in, out, method, 0, 50, 2, "global", 0, false); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		st, err := store.Load(out)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if st.Len() == 0 {
			t.Errorf("%s produced no output", method)
		}
	}
}

func TestRunSubjectScopeAndAcceptedOnly(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.jsonl")
	if err := run(in, out, "corr", 0.7, 50, 3, "subject", 0.5, true); err != nil {
		t.Fatal(err)
	}
	st, err := store.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range st.Accepted() {
		if !e.Accepted {
			t.Fatal("accepted-only output contains rejected entries")
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "corr", 0, 50, 3, "global", 0, false); err == nil {
		t.Error("missing input should fail")
	}
	if err := run("/nonexistent.jsonl", "", "corr", 0, 50, 3, "global", 0, false); err == nil {
		t.Error("unreadable input should fail")
	}
	in := writeInput(t)
	if err := run(in, "", "nope", 0, 50, 3, "global", 0, false); err == nil {
		t.Error("unknown method should fail")
	}
	if err := run(in, "", "corr", 0, 50, 3, "sideways", 0, false); err == nil {
		t.Error("unknown scope should fail")
	}
}
