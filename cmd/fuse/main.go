// Command fuse runs truth discovery over a JSONL dataset (as written by
// datagen or by dataset.Write) and emits the scored triples.
//
// Usage:
//
//	fuse -in data.jsonl [-method precrec|corr|aggressive|elastic|union|3est|ltm]
//	     [-alpha 0.5] [-union-k 50] [-level 3] [-scope global|subject]
//	     [-smoothing 0] [-out fused.jsonl] [-accepted-only]
//
// The input's gold labels (where present) are used as training data for the
// supervised methods; output rows carry the computed probability and the
// accept decision.
package main

import (
	"flag"
	"fmt"
	"os"

	"corrfuse"
	"corrfuse/internal/dataset"
	"corrfuse/internal/store"
)

func main() {
	in := flag.String("in", "", "input dataset (JSONL; required)")
	out := flag.String("out", "", "output path (default stdout)")
	method := flag.String("method", "corr", "fusion method: precrec, corr, aggressive, elastic, union, 3est, ltm")
	alpha := flag.Float64("alpha", 0, "a-priori truth probability (0 = derive from labels)")
	unionK := flag.Int("union-k", 50, "acceptance percentage for -method union")
	level := flag.Int("level", 3, "elastic approximation level for -method elastic")
	scope := flag.String("scope", "global", "accountability scope: global or subject")
	smoothing := flag.Float64("smoothing", 0, "add-k smoothing for quality estimation")
	acceptedOnly := flag.Bool("accepted-only", false, "emit only accepted triples")
	flag.Parse()

	if err := run(*in, *out, *method, *alpha, *unionK, *level, *scope, *smoothing, *acceptedOnly); err != nil {
		fmt.Fprintln(os.Stderr, "fuse:", err)
		os.Exit(1)
	}
}

func run(in, out, method string, alpha float64, unionK, level int, scopeName string, smoothing float64, acceptedOnly bool) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	d, err := dataset.Read(f)
	//lint:ignore errswallow read-only file; the dataset.Read error just above is the one that matters
	f.Close()
	if err != nil {
		return err
	}

	opts := corrfuse.Options{
		UnionK:       unionK,
		ElasticLevel: level,
		Smoothing:    smoothing,
	}
	switch method {
	case "precrec":
		opts.Method = corrfuse.PrecRec
	case "corr":
		opts.Method = corrfuse.PrecRecCorr
	case "aggressive":
		opts.Method = corrfuse.PrecRecCorrAggressive
	case "elastic":
		opts.Method = corrfuse.PrecRecCorrElastic
	case "union":
		opts.Method = corrfuse.UnionK
	case "3est":
		opts.Method = corrfuse.ThreeEstimates
	case "ltm":
		opts.Method = corrfuse.LTM
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	switch scopeName {
	case "global", "":
		opts.Scope = corrfuse.ScopeGlobal{}
	case "subject":
		opts.Scope = corrfuse.NewScopeSubject(d)
	default:
		return fmt.Errorf("unknown scope %q", scopeName)
	}
	if alpha == 0 {
		nt, nf := d.CountLabels()
		if nt+nf > 0 {
			opts.Alpha = float64(nt) / float64(nt+nf)
			if opts.Alpha < 0.05 {
				opts.Alpha = 0.05
			}
			if opts.Alpha > 0.95 {
				opts.Alpha = 0.95
			}
		}
	} else {
		opts.Alpha = alpha
	}

	fuser, err := corrfuse.New(d, opts)
	if err != nil {
		return err
	}
	res, err := fuser.Fuse()
	if err != nil {
		return err
	}

	st := store.New()
	rows := res.All
	if acceptedOnly {
		rows = res.Accepted
	}
	acceptedSet := make(map[corrfuse.TripleID]bool, len(res.Accepted))
	for _, r := range res.Accepted {
		acceptedSet[r.ID] = true
	}
	for _, r := range rows {
		entry := store.Entry{
			Triple:      r.Triple,
			Probability: r.Probability,
			Accepted:    acceptedSet[r.ID],
		}
		for _, s := range d.Providers(r.ID) {
			entry.Sources = append(entry.Sources, d.SourceName(s))
		}
		st.Put(entry)
	}

	w := os.Stdout
	if out != "" {
		file, err := os.Create(out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	if err := st.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fuse: %s over %d sources, %d triples → %d accepted\n",
		fuser.MethodName(), d.NumSources(), len(res.All), len(res.Accepted))
	return nil
}
