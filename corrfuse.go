// Package corrfuse is a library for truth discovery over multi-source data
// with unknown correlations, reproducing "Fusing Data with Correlations"
// (Pochampally, Das Sarma, Dong, Meliou, Srivastava — SIGMOD 2014).
//
// Given a set of sources that each provide a set of knowledge triples, and a
// training subset with gold truth labels, corrfuse computes for every triple
// the probability that it is true. Source quality is modeled as precision
// and recall; correlation between sources — positive (copying, shared
// extraction patterns) or negative (complementary domains) — is modeled as
// joint precision and joint recall of source subsets and exploited through a
// Bayesian inclusion–exclusion analysis.
//
// Quick start:
//
//	d := corrfuse.NewDataset()
//	s1 := d.AddSource("extractor-1")
//	d.Observe(s1, corrfuse.Triple{Subject: "Obama", Predicate: "profession", Object: "president"})
//	// … more observations; label a training subset:
//	d.SetLabel(corrfuse.Triple{...}, corrfuse.True)
//
//	f, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRecCorr})
//	res, err := f.Fuse()
//	for _, st := range res.Accepted { fmt.Println(st.Triple, st.Probability) }
package corrfuse

import (
	"fmt"

	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// Triple is one unit of data: {subject, predicate, object}.
type Triple = triple.Triple

// Dataset holds sources, their output triples and gold labels.
type Dataset = triple.Dataset

// SourceID identifies a registered source.
type SourceID = triple.SourceID

// TripleID identifies a distinct triple within a dataset.
type TripleID = triple.TripleID

// Label is a gold truth label.
type Label = triple.Label

// Label values.
const (
	Unknown = triple.Unknown
	True    = triple.True
	False   = triple.False
)

// Scope controls which non-providing sources count as evidence against a
// triple; see ScopeGlobal and NewScopeSubject.
type Scope = triple.Scope

// ScopeGlobal holds every source accountable for every triple.
type ScopeGlobal = triple.ScopeGlobal

// NewDataset returns an empty dataset.
func NewDataset() *Dataset { return triple.NewDataset() }

// NewScopeSubject builds a scope under which a source is only accountable
// for triples whose subject it covers.
func NewScopeSubject(d *Dataset) Scope { return triple.NewScopeSubject(d) }

// Method selects the fusion algorithm.
type Method int

// Available methods. PrecRec and PrecRecCorr are the paper's contributions;
// the remaining methods are the baselines it compares against.
const (
	// PrecRec is the independent-source Bayesian model (Theorem 3.1).
	PrecRec Method = iota
	// PrecRecCorr is the exact correlation-aware model (Theorem 4.2).
	PrecRecCorr
	// PrecRecCorrAggressive is the linear-time approximation (Def. 4.5).
	PrecRecCorrAggressive
	// PrecRecCorrElastic is Algorithm 1 at Options.ElasticLevel.
	PrecRecCorrElastic
	// UnionK accepts triples provided by at least Options.UnionK percent
	// of the sources. K=50 is majority voting.
	UnionK
	// ThreeEstimates is the baseline of Galland et al. (WSDM'10).
	ThreeEstimates
	// LTM is the Latent Truth Model of Zhao et al. (PVLDB'12).
	LTM
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case PrecRec:
		return "PrecRec"
	case PrecRecCorr:
		return "PrecRecCorr"
	case PrecRecCorrAggressive:
		return "PrecRecCorr-Aggressive"
	case PrecRecCorrElastic:
		return "PrecRecCorr-Elastic"
	case UnionK:
		return "Union-K"
	case ThreeEstimates:
		return "3-Estimates"
	case LTM:
		return "LTM"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a Fuser.
type Options struct {
	// Method selects the algorithm. Default PrecRecCorr.
	Method Method

	// Alpha is the a-priori probability that a triple is true.
	// Default 0.5 (the paper's setting).
	Alpha float64

	// Train restricts quality estimation to these labeled triples.
	// Nil means every labeled triple in the dataset. Ignored by UnionK,
	// ThreeEstimates and LTM, which are unsupervised.
	Train []TripleID

	// Scope defaults to ScopeGlobal.
	Scope Scope

	// Smoothing is an add-k smoothing constant for the quality counts;
	// useful for small training sets. Default 0.
	Smoothing float64

	// ElasticLevel is the adjustment level λ for PrecRecCorrElastic.
	// Default 3 (the paper's recommended level).
	ElasticLevel int

	// UnionK is the acceptance percentage for the UnionK method.
	// Default 50 (majority voting).
	UnionK int

	// Clustering controls whether sources are partitioned into
	// correlation clusters before running a correlation-aware method.
	// ClusterAuto (default) clusters when the dataset is too wide for
	// the exact computation; ClusterAlways and ClusterNever force it.
	Clustering ClusterMode
	// ClusterThreshold is the minimum significance (z-score of the
	// observed co-provision count against its independence expectation)
	// for a pair to be considered correlated (default 3).
	ClusterThreshold float64
	// MaxClusterSize caps correlation clusters (default 22).
	MaxClusterSize int

	// Seed drives the stochastic methods (LTM). Default 1.
	Seed int64
	// LTMIterations and LTMBurnIn control the Gibbs sampler
	// (defaults 10 and 5).
	LTMIterations, LTMBurnIn int
	// Iterations controls the 3-Estimates fixed point (default 20).
	Iterations int

	// Parallelism sets the number of goroutines used by Score and Fuse
	// for the PrecRec/PrecRecCorr family. 0 means GOMAXPROCS; 1 forces
	// serial scoring. A ShardedFuser uses it as the number of shards
	// scored concurrently.
	Parallelism int

	// Shards selects the subject-hash-sharded engine for models built
	// through NewModel (and the serve layer): the dataset is partitioned
	// into Shards subject-hash shards and an independent model is trained
	// per shard. 0 or 1 keeps the monolithic engine. See ShardedFuser for
	// the consistency contract.
	Shards int

	// RebuildWorkers bounds the goroutines training shard models
	// concurrently in NewSharded and Rebuild. 0 means GOMAXPROCS.
	RebuildWorkers int

	// qualityFallback supplies per-source quality for sources a training
	// slice has no labeled evidence about. NewSharded points it at a
	// globally trained estimator when building the per-shard models.
	qualityFallback quality.Params
}

// ClusterMode controls source clustering for correlation-aware methods.
type ClusterMode int

// Clustering modes.
const (
	// ClusterAuto clusters only when the source set is too wide for the
	// exact inclusion–exclusion computation.
	ClusterAuto ClusterMode = iota
	// ClusterAlways always partitions sources by pairwise correlation.
	ClusterAlways
	// ClusterNever treats all sources as one cluster; construction fails
	// if that is infeasible for the chosen method.
	ClusterNever
)

// ScoredTriple pairs a triple with its computed correctness probability.
type ScoredTriple struct {
	Triple      Triple
	ID          TripleID
	Probability float64
}

// Result is the outcome of Fuse: the accepted (probability > 0.5) triples
// and the full scored list, both in descending probability order.
type Result struct {
	// Accepted holds the triples classified as true.
	Accepted []ScoredTriple
	// All holds every provided triple with its probability.
	All []ScoredTriple
}
